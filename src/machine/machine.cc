#include "machine/machine.hh"

#include <algorithm>
#include <map>
#include <optional>

#include "isa/encoding.hh"
#include "support/logging.hh"

namespace zarf
{

namespace
{

/** Load-time view of one declaration. */
struct FuncEntry
{
    bool isCons;
    Word arity;
    Word numLocals;
    size_t bodyBegin; ///< Word index of the first body word.
    size_t bodyEnd;
};

} // namespace

class Machine::Impl
{
  public:
    Impl(const Image &image, IoBus &bus, MachineConfig config)
        : image(image), bus(bus), cfg(config),
          heap(config.semispaceWords, this->cfg.timing, machineStats)
    {
        if (cfg.semispaceWords < 2 * kGcSafeMargin) {
            fatal("semispace of %zu words is below the minimum %zu",
                  cfg.semispaceWords, 2 * kGcSafeMargin);
        }
        load();
        if (status != MachineStatus::Stuck)
            boot();
    }

    MachineStatus
    advance(Cycles budget)
    {
        Cycles target = total + budget;
        while (status == MachineStatus::Running && total < target)
            stepOnce();
        return status;
    }

    Machine::Outcome
    run(Cycles maxCycles)
    {
        advance(maxCycles);
        if (status != MachineStatus::Done)
            return { status, nullptr, diagnostic };
        ValuePtr v = exportValue(vreg, 0);
        if (!v)
            return { status == MachineStatus::Done
                         ? MachineStatus::Stuck
                         : status,
                     nullptr, diagnostic };
        return { MachineStatus::Done, std::move(v), "" };
    }

    Cycles cyclesTotal() const { return total; }
    const MachineStats &stats() const { return machineStats; }
    size_t heapUsed() const { return heap.usedWords(); }

    void
    collectNow()
    {
        heap.collect(rootProvider());
    }

    std::vector<Machine::CensusEntry>
    census()
    {
        heap.collect(rootProvider());
        std::map<std::pair<Word, Word>, std::pair<size_t, size_t>> m;
        heap.forEachObject([&](Word h) {
            auto &e = m[{ Word(mhdr::kindOf(h)), mhdr::fnOf(h) }];
            e.first += 1;
            e.second += 1 + mhdr::countOf(h);
        });
        std::vector<Machine::CensusEntry> out;
        for (const auto &[k, v] : m) {
            out.push_back({ ObjKind(k.first), k.second, v.first,
                            v.second });
        }
        std::sort(out.begin(), out.end(),
                  [](const auto &a, const auto &b) {
                      return a.words > b.words;
                  });
        return out;
    }

  private:
    // ------------------------------------------------------------
    // Cycle accounting
    // ------------------------------------------------------------

    enum class InstrClass { None, Let, Case, Result };

    void
    charge(Cycles n)
    {
        total += n;
        machineStats.execCycles += n;
        switch (curClass) {
          case InstrClass::Let:
            machineStats.let.cycles += n;
            break;
          case InstrClass::Case:
            machineStats.caseInstr.cycles += n;
            break;
          case InstrClass::Result:
            machineStats.result.cycles += n;
            break;
          case InstrClass::None:
            break;
        }
    }

    // ------------------------------------------------------------
    // Loading (the 4 load states)
    // ------------------------------------------------------------

    void
    fail(std::string why)
    {
        status = MachineStatus::Stuck;
        if (diagnostic.empty())
            diagnostic = std::move(why);
    }

    void
    load()
    {
        // LoadMagic / LoadCount / LoadInfo / LoadBody: one cycle per
        // word streamed in.
        machineStats.loadCycles = image.size() * cfg.timing.loadWord;
        total += machineStats.loadCycles;

        if (image.size() < 2 || image[0] != kMagic) {
            fail("bad magic word");
            return;
        }
        Word n = image[1];
        size_t pos = 2;
        for (Word i = 0; i < n; ++i) {
            if (pos + 2 > image.size()) {
                fail("truncated declaration header");
                return;
            }
            InfoWord info = unpackInfo(image[pos]);
            Word m = image[pos + 1];
            pos += 2;
            if (pos + m > image.size()) {
                fail("declaration body overruns image");
                return;
            }
            funcs.push_back(FuncEntry{ info.isCons, info.arity,
                                       info.numLocals, pos, pos + m });
            pos += m;
        }
        entry = ~Word(0);
        for (size_t i = 0; i < funcs.size(); ++i) {
            if (!funcs[i].isCons) {
                entry = Word(i);
                break;
            }
        }
        if (entry == ~Word(0) || funcs[entry].arity != 0)
            fail("no zero-argument entry function");
    }

    void
    boot()
    {
        // Allocate the entry thunk and start forcing it.
        Word root = allocApp(kFirstUserFuncId + entry, {});
        vreg = mval::mkRef(root);
        mode = Mode::EvalVal;
        status = MachineStatus::Running;
    }

    // ------------------------------------------------------------
    // Machine structure (mirrors the hardware's stacks)
    // ------------------------------------------------------------

    struct Activation
    {
        Word funcId = 0;
        std::vector<Word> args;
        std::vector<Word> locals;
        size_t pc = 0;
    };

    struct Frame
    {
        enum class Kind { Update, Case, PrimArgs, Apply };

        Kind kind;
        Word target = 0; ///< Update: object address to overwrite.
        Activation act;  ///< Case resumption.
        Prim prim{};
        std::vector<Word> primArgs;
        std::vector<SWord> collected;
        size_t nextArg = 0;
        std::vector<Word> extra; ///< Apply leftovers.
    };

    enum class Mode { EvalVal, Exec, Deliver };

    // ------------------------------------------------------------
    // Heap object construction
    // ------------------------------------------------------------

    Word
    allocApp(Word fn, std::vector<Word> args)
    {
        bool pad = args.empty();
        if (pad)
            args.push_back(0);
        charge(cfg.timing.allocHeader +
               args.size() * cfg.timing.letPerArg);
        return heap.alloc(ObjKind::App, fn, args, pad);
    }

    Word
    allocAppV(Word callee, std::vector<Word> args)
    {
        args.insert(args.begin(), callee);
        charge(cfg.timing.allocHeader +
               args.size() * cfg.timing.letPerArg);
        return heap.alloc(ObjKind::AppV, 0, args);
    }

    Word
    allocCons(Word id, std::vector<Word> fields)
    {
        bool pad = fields.empty();
        if (pad)
            fields.push_back(0);
        charge(cfg.timing.allocHeader +
               fields.size() * cfg.timing.letPerArg);
        return heap.alloc(ObjKind::Cons, id, fields, pad);
    }

    Word
    allocError(SWord code)
    {
        ++machineStats.errorsCreated;
        return allocCons(static_cast<Word>(Prim::Error),
                         { mval::mkInt(code) });
    }

    // ------------------------------------------------------------
    // Identifier metadata
    // ------------------------------------------------------------

    unsigned
    arityOf(Word id) const
    {
        if (isPrimId(id)) {
            auto p = primById(id);
            return p ? p->arity : 0;
        }
        size_t idx = id - kFirstUserFuncId;
        return idx < funcs.size() ? funcs[idx].arity : 0;
    }

    bool
    isConsId(Word id) const
    {
        if (isPrimId(id)) {
            auto p = primById(id);
            return p && p->isConstructor;
        }
        size_t idx = id - kFirstUserFuncId;
        return idx < funcs.size() && funcs[idx].isCons;
    }

    bool
    idExists(Word id) const
    {
        if (isPrimId(id))
            return primById(id).has_value();
        return id - kFirstUserFuncId < funcs.size();
    }

    // ------------------------------------------------------------
    // The driver
    // ------------------------------------------------------------

    /**
     * GC safe-point margin. Collection only happens between machine
     * steps, when every live reference is reachable from the
     * registers, frames, and activation (never from C++ temporaries)
     * — so each step must be guaranteed to fit its allocations in
     * this margin. The largest single allocation is one header plus
     * kMaxArity+1 payload words; a step performs at most two.
     */
    static constexpr size_t kGcSafeMargin = 4096;

    void
    stepOnce()
    {
        if (heap.outOfMemory()) {
            status = MachineStatus::OutOfMemory;
            return;
        }
        if (cfg.gcOnExhaustion && heap.freeWords() < kGcSafeMargin) {
            heap.collect(rootProvider());
            lastGcAt = total;
            if (heap.freeWords() < kGcSafeMargin) {
                status = MachineStatus::OutOfMemory;
                diagnostic = "live set exceeds semispace capacity";
                return;
            }
        }
        if (cfg.gcIntervalCycles &&
            total - lastGcAt >= cfg.gcIntervalCycles) {
            heap.collect(rootProvider());
            lastGcAt = total;
        }
        switch (mode) {
          case Mode::EvalVal:
            stepEval();
            break;
          case Mode::Exec:
            stepExec();
            break;
          case Mode::Deliver:
            if (conts.empty()) {
                status = MachineStatus::Done;
                return;
            }
            stepDeliver();
            break;
        }
    }

    /** Is this object, as it stands, a WHNF value? */
    bool
    objIsWhnf(Word h) const
    {
        ObjKind k = mhdr::kindOf(h);
        if (k == ObjKind::Cons)
            return true;
        if (k != ObjKind::App)
            return false;
        return mhdr::argsOf(h) < arityOf(mhdr::fnOf(h));
    }

    void
    stepEval()
    {
        vreg = heap.chase(vreg);
        if (mval::isInt(vreg)) {
            mode = Mode::Deliver;
            return;
        }
        Word addr = mval::refOf(vreg);
        Word h = heap.header(addr);
        charge(cfg.timing.whnfCheck); // EvWhnfHit / EvDispatch
        ObjKind kind = mhdr::kindOf(h);
        if (kind == ObjKind::Blackhole) {
            fail("re-entered a thunk under evaluation");
            return;
        }
        if (objIsWhnf(h)) {
            ++machineStats.whnfHits;
            mode = Mode::Deliver;
            return;
        }

        // A thunk: collapse pending update frames (EvCollapseUpd),
        // then enter it (EvEnterThunk + EvPushUpdate).
        while (!conts.empty() &&
               conts.back().kind == Frame::Kind::Update) {
            Word prev = conts.back().target;
            Word ph = heap.header(prev);
            heap.setHeader(prev, mhdr::pack(ObjKind::Ind,
                                            mhdr::countOf(ph), 0,
                                            mhdr::padOf(ph)));
            heap.setPayload(prev, 0, vreg);
            conts.pop_back();
            charge(cfg.timing.collapseUpdate);
            ++machineStats.updates;
        }
        {
            Frame f;
            f.kind = Frame::Kind::Update;
            f.target = addr;
            conts.push_back(std::move(f));
        }
        charge(cfg.timing.enterThunk);
        ++machineStats.forces;

        Word count = mhdr::argsOf(h);
        Word fn = mhdr::fnOf(h);

        if (kind == ObjKind::AppV) {
            // Evaluate the callee value, then apply the arguments.
            Word callee = heap.payload(addr, 0);
            Frame f;
            f.kind = Frame::Kind::Apply;
            for (Word i = 1; i < mhdr::countOf(h); ++i)
                f.extra.push_back(heap.payload(addr, i));
            blackhole(addr, h);
            conts.push_back(std::move(f));
            vreg = callee;
            return;
        }

        // App thunk on a global identifier.
        std::vector<Word> args;
        args.reserve(count);
        for (Word i = 0; i < count; ++i)
            args.push_back(heap.payload(addr, i));
        blackhole(addr, h);

        unsigned arity = arityOf(fn);
        if (isConsId(fn)) {
            // Over-applied constructor (saturated ones are values).
            vreg = mval::mkRef(allocError(kErrArity));
            return;
        }
        if (args.size() > arity) {
            Frame f;
            f.kind = Frame::Kind::Apply;
            f.extra.assign(args.begin() + arity, args.end());
            args.resize(arity);
            conts.push_back(std::move(f));
            charge(cfg.timing.applyExtra);
        }
        if (isPrimId(fn)) {
            beginPrim(static_cast<Prim>(fn), std::move(args));
            return;
        }

        // EvCallSetup: activate the function body.
        const FuncEntry &fe = funcs[fn - kFirstUserFuncId];
        charge(cfg.timing.callSetup);
        ++machineStats.callsPerFunc[fn];
        act = Activation{};
        act.funcId = fn;
        act.args = std::move(args);
        act.pc = fe.bodyBegin;
        mode = Mode::Exec;
    }

    void
    blackhole(Word addr, Word h)
    {
        heap.setHeader(addr, mhdr::pack(ObjKind::Blackhole,
                                        mhdr::countOf(h),
                                        mhdr::fnOf(h), mhdr::padOf(h)));
    }

    void
    beginPrim(Prim p, std::vector<Word> args)
    {
        // Primitive evaluation is accounted to the let class: the
        // paper's "applying two arguments to a primitive ALU
        // function and evaluating it" is a single let-application
        // unit (Sec. 5.2).
        curClass = InstrClass::Let;
        charge(cfg.timing.primSetup);
        Frame f;
        f.kind = Frame::Kind::PrimArgs;
        f.prim = p;
        f.primArgs = std::move(args);
        f.nextArg = 0;
        if (f.primArgs.empty()) {
            fail("zero-arity primitive application");
            return;
        }
        Word first = f.primArgs[0];
        conts.push_back(std::move(f));
        vreg = first;
        mode = Mode::EvalVal;
    }

    // ------------------------------------------------------------
    // Exec: fetch/decode instruction words from the image
    // ------------------------------------------------------------

    /** Reserved 2-bit source/kind encodings (value 3) are invalid. */
    static bool
    srcFieldValid(Word w)
    {
        return ((w >> 26) & 0x3u) != 3u;
    }

    Word
    resolveOperand(const Operand &op)
    {
        switch (op.src) {
          case Src::Imm:
            return mval::mkInt(op.val);
          case Src::Arg:
            if (size_t(op.val) >= act.args.size()) {
                fail("argument index out of range");
                return 0;
            }
            return act.args[size_t(op.val)];
          case Src::Local:
            if (size_t(op.val) >= act.locals.size()) {
                fail("local index out of range");
                return 0;
            }
            return act.locals[size_t(op.val)];
        }
        return 0;
    }

    void
    stepExec()
    {
        if (act.pc >= image.size()) {
            fail("program counter ran off the image");
            return;
        }
        Word w = image[act.pc];
        if ((opOf(w) == Op::Let || opOf(w) == Op::Case ||
             opOf(w) == Op::Result) &&
            !srcFieldValid(w)) {
            fail("reserved source/kind field in instruction word");
            return;
        }
        switch (opOf(w)) {
          case Op::Let:
            curClass = InstrClass::Let;
            ++machineStats.let.count;
            charge(cfg.timing.letBase);
            execLet(w);
            return;
          case Op::Case: {
            curClass = InstrClass::Case;
            ++machineStats.caseInstr.count;
            charge(cfg.timing.caseBase);
            Operand scrut = unpackCaseScrut(w);
            Frame f;
            f.kind = Frame::Kind::Case;
            f.act = act;
            vreg = resolveOperand(scrut);
            conts.push_back(std::move(f));
            mode = Mode::EvalVal;
            return;
          }
          case Op::Result: {
            curClass = InstrClass::Result;
            ++machineStats.result.count;
            charge(cfg.timing.resultBase);
            vreg = resolveOperand(unpackResult(w));
            mode = Mode::EvalVal;
            return;
          }
          default:
            fail(strprintf("unexpected opcode at word %zu", act.pc));
            return;
        }
    }

    void
    execLet(Word head)
    {
        LetWord lw = unpackLet(head);
        if (act.pc + 1 + lw.nargs > image.size()) {
            fail("let argument list overruns the image");
            return;
        }
        std::vector<Word> args;
        args.reserve(lw.nargs);
        for (Word i = 0; i < lw.nargs; ++i) {
            Word aw = image[act.pc + 1 + i];
            if (opOf(aw) != Op::Arg || !srcFieldValid(aw)) {
                fail("malformed let argument word");
                return;
            }
            charge(cfg.timing.letPerArg);
            args.push_back(resolveOperand(unpackOperand(aw)));
            if (status != MachineStatus::Running)
                return;
        }
        machineStats.letArgs += lw.nargs;

        Word bound = 0;
        if (lw.kind == CalleeKind::Func) {
            Word fn = lw.id;
            if (!idExists(fn)) {
                fail("let names an unknown function identifier");
                return;
            }
            if (isConsId(fn) && args.size() == arityOf(fn)) {
                bound = mval::mkRef(allocCons(fn, std::move(args)));
            } else if (isConsId(fn) && args.size() > arityOf(fn)) {
                bound = mval::mkRef(allocError(kErrArity));
            } else {
                bound = mval::mkRef(allocApp(fn, std::move(args)));
            }
        } else {
            Word callee =
                lw.kind == CalleeKind::Local
                    ? (lw.id < act.locals.size()
                           ? act.locals[lw.id]
                           : (fail("callee local out of range"), 0u))
                    : (lw.id < act.args.size()
                           ? act.args[lw.id]
                           : (fail("callee arg out of range"), 0u));
            if (status != MachineStatus::Running)
                return;
            if (args.empty()) {
                charge(cfg.timing.collapseUpdate); // ApAliasLocal
                bound = callee;
            } else {
                Word c = heap.chase(callee);
                if (mval::isInt(c)) {
                    bound = mval::mkRef(allocError(kErrBadApply));
                } else {
                    Word h = heap.header(mval::refOf(c));
                    ObjKind k = mhdr::kindOf(h);
                    if (k == ObjKind::App && objIsWhnf(h)) {
                        // ApCopyPartial + ApExtendArgs.
                        Word fn = mhdr::fnOf(h);
                        Word have = mhdr::argsOf(h);
                        std::vector<Word> all;
                        all.reserve(have + args.size());
                        for (Word i = 0; i < have; ++i) {
                            all.push_back(
                                heap.payload(mval::refOf(c), i));
                        }
                        charge(have * cfg.timing.copyPartialPerWord);
                        all.insert(all.end(), args.begin(),
                                   args.end());
                        if (isConsId(fn) &&
                            all.size() == arityOf(fn)) {
                            bound = mval::mkRef(
                                allocCons(fn, std::move(all)));
                        } else if (isConsId(fn) &&
                                   all.size() > arityOf(fn)) {
                            bound = mval::mkRef(allocError(kErrArity));
                        } else {
                            bound = mval::mkRef(
                                allocApp(fn, std::move(all)));
                        }
                    } else if (k == ObjKind::Cons) {
                        bound = mhdr::fnOf(h) ==
                                        static_cast<Word>(Prim::Error)
                                    ? c
                                    : mval::mkRef(
                                          allocError(kErrArity));
                    } else {
                        // Callee is an unevaluated thunk: defer.
                        bound = mval::mkRef(
                            allocAppV(callee, std::move(args)));
                    }
                }
            }
        }
        act.locals.push_back(bound);
        act.pc += 1 + lw.nargs;
    }

    // ------------------------------------------------------------
    // Deliver
    // ------------------------------------------------------------

    void
    stepDeliver()
    {
        Frame f = std::move(conts.back());
        conts.pop_back();
        switch (f.kind) {
          case Frame::Kind::Update: {
            Word h = heap.header(f.target);
            heap.setHeader(f.target,
                           mhdr::pack(ObjKind::Ind, mhdr::countOf(h),
                                      0, mhdr::padOf(h)));
            heap.setPayload(f.target, 0, vreg);
            charge(cfg.timing.update);
            ++machineStats.updates;
            return; // stay in Deliver
          }
          case Frame::Kind::Case:
            act = std::move(f.act);
            charge(cfg.timing.returnToCase);
            resumeCase();
            return;
          case Frame::Kind::PrimArgs:
            resumePrim(std::move(f));
            return;
          case Frame::Kind::Apply:
            resumeApply(std::move(f));
            return;
        }
    }

    void
    resumeCase()
    {
        curClass = InstrClass::Case;
        Word v = heap.chase(vreg);
        bool isInt = mval::isInt(v);
        Word h = 0;
        if (!isInt)
            h = heap.header(mval::refOf(v));

        // Walk the pattern words; 1 cycle per branch head.
        size_t pc = act.pc + 1;
        for (;;) {
            if (pc >= image.size()) {
                fail("case ran off the image");
                return;
            }
            Word pw = image[pc];
            Op op = opOf(pw);
            if (op == Op::PatElse) {
                act.pc = pc + 1;
                mode = Mode::Exec;
                return;
            }
            if (op != Op::PatLit && op != Op::PatCons) {
                fail("malformed case pattern word");
                return;
            }
            charge(cfg.timing.branchHead);
            ++machineStats.branchHeads;
            PatWord pat = unpackPat(pw);
            bool match;
            if (pat.isCons) {
                match = !isInt &&
                        mhdr::kindOf(h) == ObjKind::Cons &&
                        mhdr::fnOf(h) == pat.consId;
            } else {
                match = isInt && mval::intOf(v) == pat.lit;
            }
            if (match) {
                if (pat.isCons) {
                    Word addr = mval::refOf(v);
                    Word n = mhdr::argsOf(h);
                    for (Word i = 0; i < n; ++i) {
                        act.locals.push_back(heap.payload(addr, i));
                        charge(cfg.timing.fieldPush);
                    }
                }
                act.pc = pc + 1;
                mode = Mode::Exec;
                return;
            }
            pc += 1 + pat.skip;
        }
    }

    void
    resumePrim(Frame f)
    {
        curClass = InstrClass::Let;
        Word v = heap.chase(vreg);
        Prim p = f.prim;
        charge(cfg.timing.primPerArg);

        if (mval::isRef(v)) {
            Word h = heap.header(mval::refOf(v));
            if (mhdr::kindOf(h) == ObjKind::Cons &&
                mhdr::fnOf(h) == static_cast<Word>(Prim::Error)) {
                vreg = v;
                mode = Mode::Deliver;
                return;
            }
            SWord code = (p == Prim::GetInt || p == Prim::PutInt)
                             ? kErrIoNotInt
                             : kErrBadApply;
            vreg = mval::mkRef(allocError(code));
            mode = Mode::Deliver;
            return;
        }

        f.collected.push_back(mval::intOf(v));
        f.nextArg++;
        if (f.nextArg < f.primArgs.size()) {
            Word next = f.primArgs[f.nextArg];
            conts.push_back(std::move(f));
            vreg = next;
            mode = Mode::EvalVal;
            return;
        }

        switch (p) {
          case Prim::GetInt:
            charge(cfg.timing.ioOp);
            vreg = mval::mkInt(wrapInt31(bus.getInt(f.collected[0])));
            break;
          case Prim::PutInt:
            charge(cfg.timing.ioOp);
            bus.putInt(f.collected[0], f.collected[1]);
            vreg = mval::mkInt(f.collected[1]);
            break;
          case Prim::InvokeGc:
            // The hardware GC-invocation function: collect now.
            heap.collect(rootProvider());
            lastGcAt = total;
            vreg = mval::mkInt(f.collected[0]);
            break;
          default: {
            charge(cfg.timing.aluOp);
            PrimResult r = evalAlu(p, f.collected);
            vreg = r.ok ? mval::mkInt(r.value)
                        : mval::mkRef(allocError(r.errCode));
            break;
          }
        }
        mode = Mode::Deliver;
    }

    void
    resumeApply(Frame f)
    {
        curClass = InstrClass::Let;
        charge(cfg.timing.applyExtra);
        Word v = heap.chase(vreg);
        if (mval::isInt(v)) {
            vreg = mval::mkRef(allocError(kErrBadApply));
            mode = Mode::Deliver;
            return;
        }
        Word addr = mval::refOf(v);
        Word h = heap.header(addr);
        if (mhdr::kindOf(h) == ObjKind::Cons) {
            vreg = mhdr::fnOf(h) == static_cast<Word>(Prim::Error)
                       ? v
                       : mval::mkRef(allocError(kErrArity));
            mode = Mode::Deliver;
            return;
        }
        // Partial application: extend and re-evaluate.
        Word fn = mhdr::fnOf(h);
        Word have = mhdr::argsOf(h);
        std::vector<Word> all;
        all.reserve(have + f.extra.size());
        for (Word i = 0; i < have; ++i)
            all.push_back(heap.payload(addr, i));
        charge(have * cfg.timing.copyPartialPerWord);
        all.insert(all.end(), f.extra.begin(), f.extra.end());
        if (isConsId(fn) && all.size() == arityOf(fn))
            vreg = mval::mkRef(allocCons(fn, std::move(all)));
        else if (isConsId(fn) && all.size() > arityOf(fn))
            vreg = mval::mkRef(allocError(kErrArity));
        else
            vreg = mval::mkRef(allocApp(fn, std::move(all)));
        mode = Mode::EvalVal;
    }

    // ------------------------------------------------------------
    // GC roots
    // ------------------------------------------------------------

    Heap::RootProvider
    rootProvider()
    {
        return [this](const Heap::RootVisitor &visit) {
            visit(vreg);
            for (Word &w : act.args)
                visit(w);
            for (Word &w : act.locals)
                visit(w);
            for (Frame &f : conts) {
                switch (f.kind) {
                  case Frame::Kind::Update: {
                    Word slot = mval::mkRef(f.target);
                    visit(slot);
                    f.target = mval::refOf(slot);
                    break;
                  }
                  case Frame::Kind::Case:
                    for (Word &w : f.act.args)
                        visit(w);
                    for (Word &w : f.act.locals)
                        visit(w);
                    break;
                  case Frame::Kind::PrimArgs:
                    for (size_t i = f.nextArg; i < f.primArgs.size();
                         ++i) {
                        visit(f.primArgs[i]);
                    }
                    break;
                  case Frame::Kind::Apply:
                    for (Word &w : f.extra)
                        visit(w);
                    break;
                }
            }
        };
    }

    // ------------------------------------------------------------
    // Export the final value to the host
    // ------------------------------------------------------------

    ValuePtr
    exportValue(Word v, unsigned depth)
    {
        if (depth > 512) {
            fail("deep-force recursion limit");
            return nullptr;
        }
        // Force to WHNF using the machinery (EvDeepForce).
        if (!forceForExport(v))
            return nullptr;
        v = heap.chase(vreg);
        if (mval::isInt(v))
            return Value::makeInt(mval::intOf(v));
        Word addr = mval::refOf(v);
        Word h = heap.header(addr);
        Word n = mhdr::argsOf(h);
        std::vector<Word> raw;
        for (Word i = 0; i < n; ++i)
            raw.push_back(heap.payload(addr, i));
        Word fn = mhdr::fnOf(h);
        bool cons = mhdr::kindOf(h) == ObjKind::Cons;
        std::vector<ValuePtr> items;
        items.reserve(raw.size());
        for (Word w : raw) {
            ValuePtr f = exportValue(w, depth + 1);
            if (!f)
                return nullptr;
            items.push_back(std::move(f));
        }
        return cons ? Value::makeCons(fn, std::move(items))
                    : Value::makeClosure(fn, std::move(items));
    }

    /** Run the machine until `v` is WHNF; leaves it in vreg. */
    bool
    forceForExport(Word v)
    {
        vreg = v;
        mode = Mode::EvalVal;
        status = MachineStatus::Running;
        size_t base = conts.size();
        for (;;) {
            if (status != MachineStatus::Running)
                return false;
            if (mode == Mode::Deliver && conts.size() == base) {
                status = MachineStatus::Done;
                return true;
            }
            stepOnce();
        }
    }

    const Image image;
    IoBus &bus;
    MachineConfig cfg;
    MachineStats machineStats;
    Heap heap;

    std::vector<FuncEntry> funcs;
    Word entry = 0;

    std::vector<Frame> conts;
    Activation act;
    Word vreg = 0;
    Mode mode = Mode::EvalVal;
    InstrClass curClass = InstrClass::None;
    MachineStatus status = MachineStatus::Running;
    std::string diagnostic;
    Cycles total = 0;
    Cycles lastGcAt = 0;
};

Machine::Machine(const Image &image, IoBus &bus, MachineConfig config)
    : impl(std::make_unique<Impl>(image, bus, config))
{}

Machine::~Machine() = default;

MachineStatus
Machine::advance(Cycles budget)
{
    return impl->advance(budget);
}

Machine::Outcome
Machine::run(Cycles maxCycles)
{
    return impl->run(maxCycles);
}

Cycles
Machine::cycles() const
{
    return impl->cyclesTotal();
}

const MachineStats &
Machine::stats() const
{
    return impl->stats();
}

void
Machine::collectNow()
{
    impl->collectNow();
}

size_t
Machine::heapUsedWords() const
{
    return impl->heapUsed();
}

std::vector<Machine::CensusEntry>
Machine::heapCensus()
{
    return impl->census();
}

} // namespace zarf
