#include "machine/machine_impl.hh"

namespace zarf
{

namespace testhooks
{
bool poisonedOperandDefect = false;
bool forceTableDispatch = false;
} // namespace testhooks

const char *
dispatchTierName(DispatchTier t)
{
    switch (t) {
      case DispatchTier::WordWalk:
        return "word-walk";
      case DispatchTier::Uop:
        return "uop";
      case DispatchTier::Threaded:
        return "threaded";
      case DispatchTier::FastFunctional:
        return "fast-functional";
    }
    return "?";
}

const char *
machineStatusName(MachineStatus st)
{
    switch (st) {
      case MachineStatus::Running:
        return "Running";
      case MachineStatus::Done:
        return "Done";
      case MachineStatus::OutOfMemory:
        return "OutOfMemory";
      case MachineStatus::Stuck:
        return "Stuck";
      case MachineStatus::HeapCorrupt:
        return "HeapCorrupt";
      case MachineStatus::MemFault:
        return "MemFault";
      case MachineStatus::BudgetExceeded:
        return "BudgetExceeded";
    }
    return "?";
}

std::shared_ptr<const MachineSnapshot>
Machine::Impl::makeSnapshot() const
{
    // Fold the flat call counters into the stats map first so the
    // snapshot's stats (and the source's, from now on) carry the
    // counts identically.
    syncStats();
    auto s = std::make_shared<MachineSnapshot>();
    s->li = li;
    s->semispaceWords = cfg.semispaceWords;
    s->tier = tier;
    heap.save(s->heap);
    s->stats = machineStats;
    s->tally = tally;
    conts.copyTo(s->frames);
    s->framesRef = contsV;
    s->act = act;
    s->vreg = vreg;
    s->mode = mode;
    s->curClass = curClass;
    s->status = status;
    s->diagnostic = diagnostic;
    s->total = total;
    s->lastGcAt = lastGcAt;
    return s;
}

void
Machine::Impl::restoreFrom(const MachineSnapshot &s)
{
    if (s.semispaceWords != cfg.semispaceWords) {
        fatal("machine restore: semispace mismatch (%zu vs %zu "
              "words)",
              s.semispaceWords, cfg.semispaceWords);
    }
    // Tiers restore within a state family: the µop-walking
    // cycle-accurate tiers {Uop, Threaded} keep bit-identical
    // architectural state and ledgers, so their snapshots are
    // interchangeable; WordWalk keeps its frames elsewhere and
    // FastFunctional counts steps instead of cycles, so each only
    // restores within its own tier.
    auto family = [](DispatchTier t) {
        switch (t) {
          case DispatchTier::WordWalk:
            return 0;
          case DispatchTier::Uop:
          case DispatchTier::Threaded:
            return 1;
          case DispatchTier::FastFunctional:
            return 2;
        }
        return -1;
    };
    if (family(s.tier) != family(tier)) {
        fatal("machine restore: dispatch tier mismatch (%s snapshot "
              "into a %s machine)",
              dispatchTierName(s.tier), dispatchTierName(tier));
    }
    if (s.li != li && !(s.li && s.li->image == li->image))
        fatal("machine restore: snapshot is from a different image");
    heap.restore(s.heap);
    machineStats = s.stats;
    tally = s.tally;
    // The snapshot's stats already hold the folded call counts;
    // start the flat counters from zero so the next fold adds only
    // post-restore activations.
    std::fill(callCounts.begin(), callCounts.end(), 0);
    conts.assignFrom(s.frames);
    contsV = s.framesRef;
    act = s.act;
    vreg = s.vreg;
    mode = s.mode;
    curClass = s.curClass;
    status = s.status;
    diagnostic = s.diagnostic;
    total = s.total;
    lastGcAt = s.lastGcAt;
}

Machine::Machine(const Image &image, IoBus &bus, MachineConfig config)
    : impl(std::make_unique<Impl>(
          LoadedImage::load(image, tierUsesPredecode(
                                       config.effectiveTier())),
          bus, config))
{}

Machine::Machine(std::shared_ptr<const LoadedImage> li, IoBus &bus,
                 MachineConfig config)
    : impl(std::make_unique<Impl>(std::move(li), bus, config))
{}

std::shared_ptr<const MachineSnapshot>
Machine::snapshot() const
{
    return impl->makeSnapshot();
}

void
Machine::restore(const MachineSnapshot &snap)
{
    impl->restoreFrom(snap);
}

Machine::~Machine() = default;

MachineStatus
Machine::advance(Cycles budget)
{
    return impl->advance(budget);
}

Machine::Outcome
Machine::run(Cycles maxCycles)
{
    return impl->run(maxCycles);
}

Cycles
Machine::cycles() const
{
    return impl->cyclesTotal();
}

MachineStatus
Machine::status() const
{
    return impl->currentStatus();
}

const std::string &
Machine::diagnostic() const
{
    return impl->currentDiagnostic();
}

bool
Machine::injectHeapBitFlip(size_t wordIndex, unsigned bit)
{
    return impl->injectHeapBitFlip(wordIndex, bit);
}

void
Machine::injectOperandBitFlip(unsigned bit)
{
    impl->injectOperandBitFlip(bit);
}

void
Machine::raiseMemFault(const std::string &why)
{
    impl->raiseMemFault(why);
}

const MachineStats &
Machine::stats() const
{
    return impl->stats();
}

const FsmTally &
Machine::fsmTally() const
{
    return impl->tallyRef();
}

void
Machine::exportMetrics(obs::Metrics &metrics,
                       const std::string &prefix) const
{
    impl->exportMetricsImpl(metrics, prefix);
}

void
Machine::collectNow()
{
    impl->collectNow();
}

size_t
Machine::heapUsedWords() const
{
    return impl->heapUsed();
}

std::vector<Machine::CensusEntry>
Machine::heapCensus()
{
    return impl->census();
}

} // namespace zarf
