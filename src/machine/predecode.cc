#include "machine/predecode.hh"

#include "isa/encoding.hh"
#include "isa/prims.hh"
#include "support/logging.hh"

namespace zarf
{

namespace
{

/** Reserved 2-bit source/kind encodings (value 3) are invalid. */
bool
srcFieldValid(Word w)
{
    return ((w >> 26) & 0x3u) != 3u;
}

/** Classify a Func-kind callee id once, at decode time. */
void
classifyCallee(Word id, const std::vector<PredecodedFunc> &funcs,
               Uop &u)
{
    if (isPrimId(id)) {
        auto p = primById(id);
        if (!p) {
            u.calleeClass = UCallee::Unknown;
            return;
        }
        u.calleeClass =
            p->isConstructor ? UCallee::Cons : UCallee::Other;
        u.calleeArity = p->arity;
        return;
    }
    size_t idx = id - kFirstUserFuncId;
    if (idx >= funcs.size()) {
        u.calleeClass = UCallee::Unknown;
        return;
    }
    u.calleeClass = funcs[idx].isCons ? UCallee::Cons : UCallee::Other;
    u.calleeArity = funcs[idx].arity;
}

/** Predecode one operand, pre-tagging immediates. */
UOperand
makeOperand(const Operand &op)
{
    if (op.src == Src::Imm)
        return { Src::Imm, mval::mkInt(op.val) };
    return { op.src, static_cast<Word>(op.val) };
}

/** Resolve a let µop's direct-threaded dispatch token. Everything
 *  the µop path re-branches on per execution — callee kind, callee
 *  class, saturation vs over/under-application — is static, so the
 *  handler choice is made exactly once, here. */
uint8_t
letToken(const Uop &u)
{
    if (u.calleeKind != CalleeKind::Func)
        return u.nargs == 0 ? kTokLetAlias : kTokLetBind;
    switch (u.calleeClass) {
      case UCallee::Unknown:
        return kTokLetUnknown;
      case UCallee::Cons:
        if (u.nargs == u.calleeArity)
            return kTokLetConsSat;
        if (u.nargs > u.calleeArity)
            return kTokLetConsOver;
        return kTokLetApp; // partial constructor: a thunk
      case UCallee::Other:
        return kTokLetApp;
    }
    return kTokLetUnknown;
}

} // namespace

Predecoded
predecodeImage(const Image &image,
               const std::vector<PredecodedFunc> &funcs)
{
    Predecoded out;
    out.uops.resize(image.size());

    auto fail = [&](std::string why) {
        out.ok = false;
        out.error = std::move(why);
    };

    // Per-declaration recursive descent over the body, iterative via
    // a worklist of block entry positions. Every position the
    // machine's program counter could reach is decoded exactly once;
    // `uops[pos].kind != Invalid` marks positions already done (a
    // position reached twice — e.g. two branches joining — simply
    // terminates the later walk).
    std::vector<size_t> work;
    for (const PredecodedFunc &fe : funcs) {
        const size_t begin = fe.bodyBegin;
        const size_t end = fe.bodyEnd;
        if (begin == end)
            continue; // Empty body: pc immediately runs off; the
                      // machine fails at runtime either way.
        work.clear();
        work.push_back(begin);
        while (!work.empty()) {
            size_t pos = work.back();
            work.pop_back();
            // Decode one straight-line block: lets until a case or
            // result terminator.
            for (;;) {
                if (pos >= end) {
                    fail(strprintf("instruction stream runs past the "
                                   "declaration end at word %zu",
                                   pos));
                    return out;
                }
                if (out.uops[pos].kind != UopKind::Invalid)
                    break; // joined already-decoded code
                Word w = image[pos];
                Uop u;
                switch (opOf(w)) {
                  case Op::Let: {
                    if (!srcFieldValid(w)) {
                        fail(strprintf("reserved callee-kind field "
                                       "in let at word %zu", pos));
                        return out;
                    }
                    LetWord lw = unpackLet(w);
                    if (pos + 1 + lw.nargs > end) {
                        fail(strprintf("let argument list overruns "
                                       "the declaration at word %zu",
                                       pos));
                        return out;
                    }
                    u.kind = UopKind::Let;
                    u.calleeKind = lw.kind;
                    u.calleeId = lw.id;
                    if (lw.kind == CalleeKind::Func)
                        classifyCallee(lw.id, funcs, u);
                    u.nargs = lw.nargs;
                    u.argsBegin =
                        static_cast<uint32_t>(out.operands.size());
                    for (Word i = 0; i < lw.nargs; ++i) {
                        Word aw = image[pos + 1 + i];
                        if (opOf(aw) != Op::Arg ||
                            !srcFieldValid(aw)) {
                            fail(strprintf(
                                "malformed let argument word at "
                                "word %zu", pos + 1 + i));
                            return out;
                        }
                        out.operands.push_back(
                            makeOperand(unpackOperand(aw)));
                    }
                    u.next =
                        static_cast<uint32_t>(pos + 1 + lw.nargs);
                    u.tcode = letToken(u);
                    out.uops[pos] = u;
                    pos = u.next;
                    continue;
                  }
                  case Op::Case: {
                    if (!srcFieldValid(w)) {
                        fail(strprintf("reserved source field in "
                                       "case at word %zu", pos));
                        return out;
                    }
                    u.kind = UopKind::Case;
                    u.operand = makeOperand(unpackCaseScrut(w));
                    u.patBegin =
                        static_cast<uint32_t>(out.patterns.size());
                    size_t p = pos + 1;
                    for (;;) {
                        if (p >= end) {
                            fail(strprintf("case pattern chain runs "
                                           "past the declaration at "
                                           "word %zu", p));
                            return out;
                        }
                        Word pw = image[p];
                        Op op = opOf(pw);
                        if (op == Op::PatElse) {
                            u.elseBody =
                                static_cast<uint32_t>(p + 1);
                            work.push_back(p + 1);
                            break;
                        }
                        if (op != Op::PatLit && op != Op::PatCons) {
                            fail(strprintf("malformed case pattern "
                                           "word at word %zu", p));
                            return out;
                        }
                        PatWord pat = unpackPat(pw);
                        out.patterns.push_back(
                            { pat.isCons, pat.lit, pat.consId,
                              static_cast<uint32_t>(p + 1) });
                        work.push_back(p + 1);
                        p += 1 + pat.skip;
                    }
                    u.patCount =
                        static_cast<uint32_t>(out.patterns.size()) -
                        u.patBegin;
                    u.tcode = kTokCase;
                    out.uops[pos] = u;
                    break; // block terminator
                  }
                  case Op::Result: {
                    if (!srcFieldValid(w)) {
                        fail(strprintf("reserved source field in "
                                       "result at word %zu", pos));
                        return out;
                    }
                    u.kind = UopKind::Result;
                    u.operand = makeOperand(unpackResult(w));
                    u.tcode = kTokResult;
                    out.uops[pos] = u;
                    break; // block terminator
                  }
                  default:
                    fail(strprintf("unexpected opcode at word %zu",
                                   pos));
                    return out;
                }
                break; // Case/Result: block done
            }
        }
    }
    out.ok = true;
    return out;
}

} // namespace zarf
