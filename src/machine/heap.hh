/**
 * @file
 * The word-addressed heap and semispace trace collector of the
 * λ-execution layer.
 *
 * Runtime values are single tagged words (paper, Sec. 3.2: "one bit
 * is attached to values at runtime"): bit 31 clear means a 31-bit
 * two's-complement integer; bit 31 set means a heap reference.
 *
 * Heap objects are a header word followed by payload words:
 *
 *   header  [31:28] object kind   [27:16] payload count
 *           [15:0]  function/constructor identifier
 *
 * Kinds: App (an application of a global identifier — a thunk when
 * saturated, a partial-application value otherwise), AppV (callee is
 * itself a value word, payload[0]), Cons (saturated constructor),
 * Ind (updated object; payload[0] is the value), Blackhole (under
 * evaluation), Fwd (GC forwarding pointer, payload[0] is the new
 * address; never visible outside a collection).
 *
 * Collection is a Cheney-style semispace copy. Costs follow Sec.
 * 5.2: N+4 cycles to copy an N-word object and 2 cycles to check a
 * reference that may already have been collected.
 *
 * Integrity: a structurally valid heap can never overflow to-space
 * (the live set is bounded by the from-space allocation) or contain
 * an indirection cycle. Both *can* happen once a single-event upset
 * has corrupted a header or payload word, so instead of aborting the
 * host, the heap detects these conditions — to-space overflow,
 * indirection cycles during evacuation, and runaway indirection
 * chains during chase() — and latches a sticky corruption flag with
 * a reason. The machine surfaces the flag as the recoverable
 * MachineStatus::HeapCorrupt so the system layer's watchdog can
 * restart the λ-layer (docs/RESILIENCE.md).
 *
 * Host hot paths (docs/PERF.md, "Campaign-scale execution"): the
 * backing store is calloc-backed, so semispaces are zeroed lazily by
 * the OS instead of eagerly at construction; allocation and chase()
 * are inlined bump/short-circuit fast paths that fall out of line
 * only on overflow or an actual indirection; evacuation copies the
 * common non-indirection object without touching the chain scratch.
 * None of this changes a modelled cycle — the charge sequence is
 * byte-for-byte the seed's.
 */

#ifndef ZARF_MACHINE_HEAP_HH
#define ZARF_MACHINE_HEAP_HH

#include <functional>
#include <vector>

#include "machine/stats.hh"
#include "machine/timing.hh"
#include "support/types.hh"

namespace zarf
{

/** Tagged machine value word helpers. */
namespace mval
{

constexpr Word kRefBit = 0x80000000u;

inline bool isRef(Word w) { return (w & kRefBit) != 0; }
inline bool isInt(Word w) { return (w & kRefBit) == 0; }

inline Word
mkInt(SWord v)
{
    return static_cast<Word>(v) & 0x7fffffffu;
}

inline SWord
intOf(Word w)
{
    Word payload = w & 0x7fffffffu;
    if (payload & 0x40000000u)
        payload |= 0x80000000u; // sign-extend bit 30
    return static_cast<SWord>(payload);
}

inline Word mkRef(Word addr) { return addr | kRefBit; }
inline Word refOf(Word w) { return w & 0x7fffffffu; }

} // namespace mval

/** Heap object kinds. */
enum class ObjKind : Word
{
    App = 1,
    AppV = 2,
    Cons = 3,
    Ind = 4,
    Blackhole = 5,
    Fwd = 6,
};

/**
 * Header word helpers.
 *
 * Layout: [31:28] kind, [27] pad flag, [26:16] payload word count,
 * [15:0] function/constructor identifier. The pad flag marks App
 * objects whose payload was padded to at least one word so that an
 * in-place update to an indirection always fits; padded objects
 * carry count() payload words but count()-1 real arguments.
 */
namespace mhdr
{

inline Word
pack(ObjKind kind, Word count, Word fn, bool pad = false)
{
    return (static_cast<Word>(kind) << 28) |
           (static_cast<Word>(pad) << 27) | ((count & 0x7ffu) << 16) |
           (fn & 0xffffu);
}

inline ObjKind kindOf(Word h) { return static_cast<ObjKind>(h >> 28); }
inline bool padOf(Word h) { return ((h >> 27) & 1u) != 0; }
inline Word countOf(Word h) { return (h >> 16) & 0x7ffu; }
inline Word fnOf(Word h) { return h & 0xffffu; }

/** Real argument/field count (payload minus padding). */
inline Word
argsOf(Word h)
{
    return countOf(h) - (padOf(h) ? 1u : 0u);
}

} // namespace mhdr

/**
 * The semispace heap. Allocation bumps a pointer within the active
 * space; collection copies the live graph into the other space.
 */
class Heap
{
  public:
    /**
     * @param semispaceWords capacity of each semispace
     * @param timing cycle-cost model (GC costs)
     * @param stats machine statistics to account into
     */
    Heap(size_t semispaceWords, const TimingModel &timing,
         MachineStats &stats);

    /**
     * Allocate an object. Returns the address of the header word,
     * or fails via the outOfMemory flag if even a collection cannot
     * make room (the caller must have registered roots first).
     *
     * @param kind object kind
     * @param fn function/constructor identifier
     * @param payload payload words
     * @param pad payload was padded by one word (see mhdr)
     */
    Word alloc(ObjKind kind, Word fn, const std::vector<Word> &payload,
               bool pad = false);

    /** Span overload: the hot path allocates straight from reused
     *  scratch buffers without materializing a payload vector. The
     *  bump fast path is inlined; only an exhausted space falls into
     *  the collect-hook slow path. */
    Word
    alloc(ObjKind kind, Word fn, const Word *payload, size_t n,
          bool pad = false)
    {
        size_t need = 1 + n;
        if (allocPtr + need > limit) [[unlikely]]
            return allocSlow(kind, fn, payload, n, pad);
        Word addr = static_cast<Word>(allocPtr);
        mem[allocPtr] = mhdr::pack(kind, static_cast<Word>(n), fn, pad);
        for (size_t i = 0; i < n; ++i)
            mem[allocPtr + 1 + i] = payload[i];
        allocPtr += need;
        ++stats.allocations;
        stats.allocatedWords += need;
        return addr;
    }

    /** Read the header of an object. */
    Word header(Word addr) const { return mem[addr]; }
    /** Read payload word i of an object. */
    Word payload(Word addr, Word i) const { return mem[addr + 1 + i]; }
    /** Overwrite the header (update/blackhole). */
    void setHeader(Word addr, Word h) { mem[addr] = h; }
    /** Overwrite payload word i. */
    void setPayload(Word addr, Word i, Word v) { mem[addr + 1 + i] = v; }

    /** Follow indirections to a representative value word. Walks at
     *  most one chain link per live object; a longer walk (possible
     *  only on a corrupted heap: an Ind cycle) or a reference outside
     *  the heap latches the corruption flag and yields integer 0 so
     *  the machine can halt with HeapCorrupt instead of spinning.
     *  The common case — an integer, or a reference to a non-Ind
     *  object — is decided inline without entering the walk. */
    /** A header address is valid iff it lies inside the two
     *  semispaces (the trailing slack words are never object
     *  bases). */
    bool validAddr(Word addr) const { return addr < 2 * semiWords; }

    Word
    chase(Word value) const
    {
        if (mval::isInt(value))
            return value;
        Word addr = mval::refOf(value);
        if (validAddr(addr) &&
            mhdr::kindOf(mem[addr]) != ObjKind::Ind) [[likely]]
            return value;
        return chaseSlow(value);
    }

    /**
     * Run a collection. The root provider must call the supplied
     * callback on every root slot; the callback rewrites the slot
     * in place.
     */
    using RootVisitor = std::function<void(Word &slot)>;
    using RootProvider = std::function<void(const RootVisitor &)>;
    void collect(const RootProvider &roots);

    /** Set the hook invoked when alloc must collect. */
    void setCollectHook(RootProvider roots) { hook = std::move(roots); }

    /** Visit every object header in the active space. */
    template <typename F>
    void
    forEachObject(F &&f) const
    {
        size_t p = base;
        while (p < allocPtr) {
            Word h = mem[p];
            f(h);
            p += 1 + mhdr::countOf(h);
        }
    }

    /** Words currently allocated in the active space. */
    size_t usedWords() const { return allocPtr - base; }
    /** Words still free in the active space. */
    size_t freeWords() const { return limit - allocPtr; }
    /** Capacity of one semispace. */
    size_t capacity() const { return semiWords; }
    /** True once an allocation has failed irrecoverably. */
    bool outOfMemory() const { return oom; }
    /** True once heap corruption has been detected (GC to-space
     *  overflow, indirection cycle, out-of-range reference). Sticky;
     *  the heap contents are untrustworthy once set. */
    bool corrupt() const { return corruptFlag; }
    /** Human-readable reason for the latched corruption, or "". */
    const char *corruptWhy() const { return corruptWhyStr; }
    /** Flip one bit of an allocated word in the active space (SEU
     *  injection). `offset` is reduced modulo usedWords(); no-op on
     *  an empty heap. */
    void flipBit(size_t offset, unsigned bit);
    /** Cycles consumed by collections so far. */
    Cycles gcCycles() const { return stats.gcCycles; }

    /** Attribute GC cycle charges to FSM states in t (null to stop).
     *  The tally partitions stats.gcCycles exactly. */
    void setTally(FsmTally *t) { tally = t; }

    /**
     * A captured heap state (Machine::snapshot). The words vector
     * holds the *entire* backing store, not just the active space:
     * after a restore, a fault campaign may inject upsets whose
     * corrupted references read the inactive space or the slack
     * region, and those reads must see exactly what a never-restored
     * run would have seen there.
     */
    struct Snapshot
    {
        size_t semiWords = 0;
        size_t base = 0;
        size_t allocPtr = 0;
        size_t limit = 0;
        bool oom = false;
        bool corruptFlag = false;
        const char *corruptWhyStr = "";
        std::vector<Word> words;
    };

    /** Capture the complete heap state into `out`. */
    void save(Snapshot &out) const;
    /** Restore a state captured by save(). The snapshot must come
     *  from a heap of the same semispace size (fatal otherwise). */
    void restore(const Snapshot &s);

  private:
    /** The calloc-backed word store: pages are zeroed lazily by the
     *  OS on first touch instead of eagerly at construction. */
    class WordStore
    {
      public:
        explicit WordStore(size_t words);
        ~WordStore();
        WordStore(const WordStore &) = delete;
        WordStore &operator=(const WordStore &) = delete;
        Word *data() const { return p; }
        size_t size() const { return n; }

      private:
        Word *p = nullptr;
        size_t n = 0;
    };

    /** Out-of-line alloc tail: collect via the hook and retry, or
     *  latch outOfMemory. */
    Word allocSlow(ObjKind kind, Word fn, const Word *payload,
                   size_t n, bool pad);

    /** Out-of-line chase tail: the full guarded indirection walk. */
    Word chaseSlow(Word value) const;

    /** Copy one object into to-space; returns its new address. The
     *  inline body handles forwarding pointers and plain objects;
     *  indirections fall into evacuateInd. */
    Word evacuate(Word addr);

    /** Evacuate tail for indirection chains. `h` is the (already
     *  charged and validated) header of `addr`, known to be Ind. */
    Word evacuateInd(Word addr, Word h);

    /** Latch the corruption flag (first reason wins). Const because
     *  detection can happen on read paths (chase). */
    void
    markCorrupt(const char *why) const
    {
        if (!corruptFlag) {
            corruptFlag = true;
            corruptWhyStr = why;
        }
    }

    WordStore store;
    Word *mem; // = store.data(); the hot-path alias
    size_t semiWords; // semispace size in words
    size_t base = 0;
    size_t allocPtr = 0;
    size_t limit = 0;
    bool oom = false;
    mutable bool corruptFlag = false;
    mutable const char *corruptWhyStr = "";

    // GC working state.
    size_t toBase = 0;
    size_t toPtr = 0;
    std::vector<Word> indChain; // evacuateInd scratch: chain links

    RootProvider hook;
    const TimingModel &timing;
    MachineStats &stats;
    FsmTally *tally = nullptr;
};

} // namespace zarf

#endif // ZARF_MACHINE_HEAP_HH
