#include "machine/loaded_image.hh"

#include "isa/encoding.hh"
#include "isa/prims.hh"

namespace zarf
{

std::shared_ptr<const LoadedImage>
LoadedImage::load(const Image &image, bool predecode)
{
    auto li = std::make_shared<LoadedImage>();
    li->image = image;
    li->hasPredecode = predecode;

    // Header parse — the same checks, in the same order, as the
    // machine's load() performed before this artifact existed, so
    // Machine::load can replay the first failure verbatim.
    auto fail = [&](std::string why) {
        li->headerOk = false;
        li->headerError = std::move(why);
    };

    if (image.size() < 2 || image[0] != kMagic) {
        fail("bad magic word");
        return li;
    }
    Word n = image[1];
    size_t pos = 2;
    for (Word i = 0; i < n; ++i) {
        if (pos + 2 > image.size()) {
            fail("truncated declaration header");
            return li;
        }
        InfoWord info = unpackInfo(image[pos]);
        Word m = image[pos + 1];
        pos += 2;
        if (pos + m > image.size()) {
            fail("declaration body overruns image");
            return li;
        }
        li->funcs.push_back(PredecodedFunc{
            info.isCons, info.arity, info.numLocals, pos, pos + m });
        pos += m;
    }
    Word entry = ~Word(0);
    for (size_t i = 0; i < li->funcs.size(); ++i) {
        if (!li->funcs[i].isCons) {
            entry = Word(i);
            break;
        }
    }
    if (entry == ~Word(0) || li->funcs[entry].arity != 0) {
        fail("no zero-argument entry function");
        return li;
    }
    li->entry = entry;
    li->headerOk = true;

    if (!predecode)
        return li;

    // Identifier metadata: primitives, then user declarations.
    li->idInfo.assign(kFirstUserFuncId + li->funcs.size(), IdInfo{});
    for (const PrimInfo &p : primTable()) {
        IdInfo &e = li->idInfo[static_cast<Word>(p.id)];
        e.arity = p.arity;
        e.isCons = p.isConstructor;
        e.exists = true;
    }
    for (size_t i = 0; i < li->funcs.size(); ++i) {
        IdInfo &e = li->idInfo[kFirstUserFuncId + i];
        e.arity = li->funcs[i].arity;
        e.isCons = li->funcs[i].isCons;
        e.exists = true;
    }

    li->pre = predecodeImage(li->image, li->funcs);
    return li;
}

} // namespace zarf
