/**
 * @file
 * Status and error reporting for the Zarf tool suite.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for user-caused
 * conditions the program cannot continue from (a malformed binary, a
 * bad configuration), and warn()/inform() report conditions that do
 * not stop execution.
 */

#ifndef ZARF_SUPPORT_LOGGING_HH
#define ZARF_SUPPORT_LOGGING_HH

#include <cstdarg>
#include <string>

namespace zarf
{

/** Abort with a message; for internal bugs that should never happen. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit with an error message; for user-caused unrecoverable errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but non-fatal condition to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report an informational message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** va_list variant of strprintf. */
std::string vstrprintf(const char *fmt, va_list args);

} // namespace zarf

#endif // ZARF_SUPPORT_LOGGING_HH
