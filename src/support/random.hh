/**
 * @file
 * Deterministic pseudo-random number generation for workloads and
 * property tests.
 *
 * A small xoshiro-style generator is used instead of std::mt19937 so
 * that workload streams are reproducible across standard library
 * implementations (the C++ standard does not pin distribution
 * algorithms).
 */

#ifndef ZARF_SUPPORT_RANDOM_HH
#define ZARF_SUPPORT_RANDOM_HH

#include <cstdint>

namespace zarf
{

/** Deterministic 64-bit PRNG (splitmix64-seeded xorshift). */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x5a4f12e9d3b7c841ull) { reseed(seed); }

    /** Reset the generator to a seed-derived state. */
    void
    reseed(uint64_t seed)
    {
        // splitmix64 to spread low-entropy seeds.
        state = seed + 0x9e3779b97f4a7c15ull;
        uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        state = z ^ (z >> 31);
        if (state == 0)
            state = 0x5a4f12e9d3b7c841ull;
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(below(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p. */
    bool chance(double p) { return real() < p; }

    /** Zero-mean Gaussian via Box-Muller (cached pair discarded). */
    double
    gaussian(double sigma)
    {
        // Marsaglia polar method.
        double u, v, s;
        do {
            u = 2.0 * real() - 1.0;
            v = 2.0 * real() - 1.0;
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        double m = __builtin_sqrt(-2.0 * __builtin_log(s) / s);
        return sigma * u * m;
    }

  private:
    uint64_t state;
};

} // namespace zarf

#endif // ZARF_SUPPORT_RANDOM_HH
