/**
 * @file
 * Small text utilities used by the assembler and report writers.
 */

#ifndef ZARF_SUPPORT_TEXT_HH
#define ZARF_SUPPORT_TEXT_HH

#include <string>
#include <vector>

namespace zarf
{

/** Split a string on a delimiter character, keeping empty fields. */
std::vector<std::string> split(const std::string &s, char delim);

/** Strip leading and trailing whitespace. */
std::string trim(const std::string &s);

/** True if the string parses fully as a (possibly signed) integer. */
bool isInteger(const std::string &s);

/** Render a fixed-point table cell, right-aligned to width. */
std::string padLeft(const std::string &s, size_t width);

/** Render a table cell, left-aligned to width. */
std::string padRight(const std::string &s, size_t width);

} // namespace zarf

#endif // ZARF_SUPPORT_TEXT_HH
