#include "support/text.hh"

#include <cctype>
#include <cstdlib>

namespace zarf
{

std::vector<std::string>
split(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == delim) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
trim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
isInteger(const std::string &s)
{
    if (s.empty())
        return false;
    size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
    if (i == s.size())
        return false;
    for (; i < s.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(s[i])))
            return false;
    }
    return true;
}

std::string
padLeft(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

} // namespace zarf
