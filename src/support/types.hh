/**
 * @file
 * Fundamental word types shared by every Zarf component.
 *
 * All words in the machine are 32 bits (paper, Sec. 3.2). Runtime
 * values carry one tag bit (bit 31) distinguishing primitive integers
 * from heap references, so machine-level integers are 31-bit two's
 * complement.
 */

#ifndef ZARF_SUPPORT_TYPES_HH
#define ZARF_SUPPORT_TYPES_HH

#include <cstdint>

namespace zarf
{

/** A raw 32-bit machine word. */
using Word = uint32_t;

/** Signed view of a machine word. */
using SWord = int32_t;

/** A cycle count. */
using Cycles = uint64_t;

/** Machine integers are 31-bit two's complement (one tag bit). */
constexpr SWord kIntMin = -(1 << 30);
constexpr SWord kIntMax = (1 << 30) - 1;

/** Wrap a host integer into the machine's 31-bit signed range. */
constexpr SWord
wrapInt31(int64_t v)
{
    uint32_t u = static_cast<uint32_t>(v) & 0x7fffffffu;
    // Sign-extend bit 30 into bit 31.
    if (u & 0x40000000u)
        u |= 0x80000000u;
    return static_cast<SWord>(u);
}

} // namespace zarf

#endif // ZARF_SUPPORT_TYPES_HH
