/**
 * @file
 * Microbenchmarks of the toolchain and execution engines (host
 * performance, google-benchmark): assembling, encoding, decoding,
 * and running the paper's map example on all three engines, plus
 * collector throughput. These track simulator performance, not
 * modelled hardware cycles.
 */

#include <benchmark/benchmark.h>

#include "common_progs.hh"
#include "isa/binary.hh"
#include "machine/machine.hh"
#include "sem/bigstep.hh"
#include "sem/smallstep.hh"
#include "zasm/zasm.hh"

namespace
{

using namespace zarf;

void
BM_AssembleMap(benchmark::State &state)
{
    std::string text = bench::mapProgramText();
    for (auto _ : state) {
        Program p = assembleOrDie(text);
        benchmark::DoNotOptimize(p.decls.size());
    }
}
BENCHMARK(BM_AssembleMap);

void
BM_EncodeDecode(benchmark::State &state)
{
    Program p = assembleOrDie(bench::mapProgramText());
    for (auto _ : state) {
        Image img = encodeProgram(p);
        DecodeResult d = decodeProgram(img);
        benchmark::DoNotOptimize(d.ok);
    }
}
BENCHMARK(BM_EncodeDecode);

void
BM_BigStepMap(benchmark::State &state)
{
    Program p = assembleOrDie(bench::mapProgramText());
    NullBus bus;
    for (auto _ : state) {
        BigStep bs(p, bus);
        benchmark::DoNotOptimize(bs.runMain().ok());
    }
}
BENCHMARK(BM_BigStepMap);

void
BM_SmallStepMap(benchmark::State &state)
{
    Program p = assembleOrDie(bench::mapProgramText());
    NullBus bus;
    for (auto _ : state) {
        SmallStep ss(p, bus);
        benchmark::DoNotOptimize(ss.runMain().ok());
    }
}
BENCHMARK(BM_SmallStepMap);

void
BM_MachineMap(benchmark::State &state)
{
    Program p = assembleOrDie(bench::mapProgramText());
    Image img = encodeProgram(p);
    NullBus bus;
    uint64_t simCycles = 0;
    for (auto _ : state) {
        Machine m(img, bus);
        benchmark::DoNotOptimize(m.run().status);
        simCycles += m.cycles();
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        double(simCycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineMap);

void
BM_MachineCountdown(benchmark::State &state)
{
    Program p = assembleOrDie(bench::countdownProgramText());
    Image img = encodeProgram(p);
    NullBus bus;
    uint64_t simCycles = 0;
    for (auto _ : state) {
        MachineConfig cfg;
        cfg.semispaceWords = 1 << 14; // force frequent collection
        Machine m(img, bus, cfg);
        benchmark::DoNotOptimize(m.run().status);
        simCycles += m.cycles();
    }
    state.counters["sim_cycles/s"] = benchmark::Counter(
        double(simCycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineCountdown);

} // namespace

BENCHMARK_MAIN();
