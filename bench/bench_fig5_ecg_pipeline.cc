/**
 * @file
 * Figure 5 — the ECG processing pipeline: 200 Hz input filtered
 * through the Pan-Tompkins cascade, peaks classified, heart rate
 * determined, and the result fed to the ATP procedure.
 *
 * Reproduces the figure as (1) a per-stage signal table around one
 * QRS complex, and (2) detection/ATP behaviour across a normal
 * rhythm and a ventricular-tachycardia episode with ground truth
 * from the synthetic heart.
 */

#include <cstdio>
#include <vector>

#include "ecg/synth.hh"
#include "icd/spec.hh"

using namespace zarf;

int
main()
{
    std::printf("=== Figure 5: ECG pipeline stages and ATP ===\n\n");

    // ---- Stage-by-stage view around a beat ----
    ecg::ScriptedHeart heart({ { 30.0, 75.0 } }, 42);
    icd::IcdSpec spec;
    std::vector<icd::StageTrace> trace;
    for (int i = 0; i < 1200; ++i)
        trace.push_back(spec.stepTraced(heart.nextSample()));

    std::printf("signals around the beat near sample 1030 "
                "(200 Hz, 5 ms/sample):\n");
    std::printf("  sample   input  lowpass highpass  deriv  "
                "squared      MWI   thresh  QRS\n");
    for (int i = 1000; i < 1080; i += 4) {
        const icd::StageTrace &t = trace[size_t(i)];
        std::printf("  %6d  %6d  %7d  %7d  %5d  %7d  %7d  %7d  %s\n",
                    i, t.input, t.lowpass, t.highpass, t.derivative,
                    t.squared, t.mwi, t.threshold,
                    t.qrs ? "*" : "");
    }
    std::printf("\nnormal rhythm, 30 s at 75 bpm: %llu beats "
                "generated, %llu detected, rate estimate %d bpm, "
                "therapies %llu\n",
                (unsigned long long)heart.rPeaks().size(),
                (unsigned long long)spec.qrsCount(),
                spec.heartRateBpm(),
                (unsigned long long)spec.therapyCount());
    for (int i = 1200; i < 6000; ++i)
        spec.step(heart.nextSample());
    std::printf("  ... after the full 30 s: %llu/%zu beats "
                "detected (sensitivity %.1f%%)\n",
                (unsigned long long)spec.qrsCount(),
                heart.rPeaks().size(),
                100.0 * double(spec.qrsCount()) /
                    double(heart.rPeaks().size()));

    // ---- VT episode: detection and the ATP prescription ----
    std::printf("\nVT episode (75 bpm -> 190 bpm at t=20 s):\n");
    ecg::ScriptedHeart vt({ { 20.0, 75.0 }, { 60.0, 190.0 } }, 5);
    icd::IcdSpec spec2;
    std::vector<SWord> outs;
    for (int i = 0; i < 60 * 200; ++i)
        outs.push_back(spec2.step(vt.nextSample()));

    std::printf("  therapies delivered: %llu\n",
                (unsigned long long)spec2.therapyCount());
    std::printf("  pulse train (sample indices, value 2 marks the "
                "first pulse of a burst):\n    ");
    int shown = 0;
    long prev = -1;
    for (size_t i = 0; i < outs.size() && shown < 24; ++i) {
        if (outs[i] != icd::kOutNone) {
            if (prev >= 0) {
                std::printf("%zu(+%ld%s) ", i, long(i) - prev,
                            outs[i] == 2 ? ",new burst" : "");
            } else {
                std::printf("%zu(start) ", i);
            }
            prev = long(i);
            ++shown;
        }
    }
    std::printf("\n  paper prescription: 3 sequences of 8 pulses at "
                "88%% of the cycle length, 20 ms decrement between "
                "sequences\n");
    return 0;
}
