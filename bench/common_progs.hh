/**
 * @file
 * Shared program texts for the microbenchmarks.
 */

#ifndef ZARF_BENCH_COMMON_PROGS_HH
#define ZARF_BENCH_COMMON_PROGS_HH

#include <string>

namespace zarf::bench
{

inline std::string
mapProgramText()
{
    return R"(
con Nil
con Cons head tail

fun main =
  let inc = addOne
  let l0 = Nil
  let l1 = Cons 3 l0
  let l2 = Cons 2 l1
  let l3 = Cons 1 l2
  let out = map inc l3
  let s = sumList out
  result s

fun addOne x =
  let y = add x 1
  result y

fun map f list =
  case list of
    Nil =>
      let e = Nil
      result e
    Cons head tail =>
      let head' = f head
      let tail' = map f tail
      let list' = Cons head' tail'
      result list'
  else
    let err = Error 0
    result err

fun sumList list =
  case list of
    Nil =>
      result 0
    Cons head tail =>
      let rest = sumList tail
      let s = add head rest
      result s
  else
    let err = Error 0
    result err
)";
}

inline std::string
countdownProgramText()
{
    return R"(
fun main =
  let n = loop 30000
  result n

fun loop n =
  case n of
    0 =>
      result 42
    else
      let n' = sub n 1
      let r = loop n'
      result r
)";
}

} // namespace zarf::bench

#endif // ZARF_BENCH_COMMON_PROGS_HH
