/**
 * @file
 * Table 1 — hardware resource usage of the two layers.
 *
 * The paper synthesizes for a Xilinx Artix-7; we reproduce the table
 * from the calibrated structural model (see verify/resource.hh for
 * the substitution rationale). Printed side by side with the paper's
 * published values.
 */

#include <cstdio>

#include "verify/resource.hh"

int
main()
{
    std::printf("=== Table 1: resource usage of the Zarf layers "
                "===\n\n%s\n",
                zarf::verify::renderTable1().c_str());
    std::printf("paper: \"In all, the combinational logic takes "
                "29,980 primitive gates (roughly the size of a MIPS "
                "R3000)...\nthe lambda-execution layer is still "
                "quite a bit smaller than many common embedded "
                "microcontrollers.\"\n");
    return 0;
}
