/**
 * @file
 * Sec. 6 — dynamic execution statistics of the λ-execution layer
 * running the ICD application, from a multi-million-cycle trace of
 * back-to-back iterations (the idle timer wait is excluded, as in
 * the paper's dynamic trace of the active application).
 *
 * Paper reference values: let 10.36 cycles at 5.16 args average;
 * case 10.59 cycles (1 cycle per branch head); result 11.01;
 * total CPI 7.46 (11.86 with GC); about one third of dynamic
 * instructions are branch heads.
 */

#include <cstdio>
#include <cstring>

#include <algorithm>

#include "ecg/synth.hh"
#include "icd/zarf_icd.hh"
#include "lowlevel/extract.hh"
#include "isa/binary.hh"
#include "machine/machine.hh"
#include "obs/metrics.hh"
#include "support/random.hh"
#include "system/ports.hh"
#include "zasm/prelude.hh"
#include "zasm/samples.hh"
#include "zasm/zasm.hh"

using namespace zarf;

namespace
{

/** Back-to-back rig: the timer always fires, so the trace contains
 *  only productive iterations. */
class BusyRig : public IoBus
{
  public:
    explicit BusyRig(ecg::Heart &h) : heart(h) {}

    SWord
    getInt(SWord port) override
    {
        if (port == sys::kPortTimer)
            return 1;
        if (port == sys::kPortEcgIn)
            return heart.nextSample();
        return 0;
    }

    void
    putInt(SWord port, SWord) override
    {
        if (port == sys::kPortCommOut)
            ++iterations;
    }

    ecg::Heart &heart;
    uint64_t iterations = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const char *metricsPath = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--metrics-json") && i + 1 < argc) {
            metricsPath = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--metrics-json FILE]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("=== Sec. 6: dynamic CPI of the lambda-execution "
                "layer ===\n\n");

    ecg::ScriptedHeart heart({ { 60.0, 75.0 }, { 120.0, 190.0 } },
                             42);
    BusyRig rig(heart);
    MachineConfig mcfg;
    mcfg.fsmTally = metricsPath != nullptr;
    Machine m(icd::buildKernelImage(), rig, mcfg);

    // A trace of several million cycles, including VT + therapy so
    // every code path contributes.
    while (m.cycles() < 8'000'000 &&
           m.advance(1'000'000) == MachineStatus::Running) {}

    const MachineStats &s = m.stats();
    std::printf("trace: %llu cycles, %llu iterations of the ICD "
                "loop, %llu dynamic instructions\n\n",
                (unsigned long long)m.cycles(),
                (unsigned long long)rig.iterations,
                (unsigned long long)s.dynamicInstructions());

    std::printf("  %-26s %12s %12s\n", "metric", "this work",
                "paper");
    std::printf("  %-26s %12.2f %12.2f\n", "let CPI", s.let.cpi(),
                10.36);
    std::printf("  %-26s %12.2f %12.2f\n", "let args (avg)",
                s.avgLetArgs(), 5.16);
    std::printf("  %-26s %12.2f %12.2f\n", "case CPI",
                s.caseInstr.cpi(), 10.59);
    std::printf("  %-26s %12.2f %12.2f\n", "result CPI",
                s.result.cpi(), 11.01);
    std::printf("  %-26s %12.2f %12.2f\n", "total CPI (no GC)",
                s.cpiNoGc(), 7.46);
    std::printf("  %-26s %12.2f %12.2f\n", "total CPI (with GC)",
                s.cpiWithGc(), 11.86);
    std::printf("  %-26s %11.1f%% %12s\n", "branch-head fraction",
                100.0 * s.branchHeadFraction(), "~33%");

    std::printf("\nheap behaviour:\n");
    std::printf("  %llu objects / %llu words allocated; %llu "
                "forces (%llu satisfied by the 2-cycle check); "
                "%llu updates\n",
                (unsigned long long)s.allocations,
                (unsigned long long)s.allocatedWords,
                (unsigned long long)s.forces,
                (unsigned long long)s.whnfHits,
                (unsigned long long)s.updates);
    std::printf("  GC: %llu runs, %llu cycles (%.1f%% of "
                "execution), max live %llu words\n",
                (unsigned long long)s.gcRuns,
                (unsigned long long)s.gcCycles,
                100.0 * double(s.gcCycles) /
                    double(s.execCycles + s.gcCycles),
                (unsigned long long)s.gcMaxLiveWords);

    // Whole-run function profile. The binary carries no names, so
    // resolve them from the pre-encoding extracted program (ids are
    // assigned identically by construction).
    Program prog = ll::extractOrDie(icd::buildKernelLowLevel());
    std::vector<std::pair<uint64_t, Word>> hot;
    for (const auto &[fn, calls] : s.callsPerFunc)
        hot.push_back({ calls, fn });
    std::sort(hot.rbegin(), hot.rend());
    std::printf("\nhot functions (activations):\n");
    for (size_t i = 0; i < hot.size() && i < 8; ++i) {
        size_t idx = Program::indexOf(hot[i].second);
        const char *name = idx < prog.decls.size()
                               ? prog.decls[idx].name.c_str()
                               : "?";
        std::printf("  %-12s %10llu\n", name,
                    (unsigned long long)hot[i].first);
    }
    // ---- A second workload style: case-dispatch interpreter ----
    // The authors' hand-written software is dispatch-heavy (about a
    // third of dynamic instructions are branch heads); the mini
    // stack-VM interpreter reproduces that style.
    Rng rng(7);
    std::vector<VmInstr> vmProg;
    {
        int depth = 0;
        for (int i = 0; i < 4000; ++i) {
            double roll = rng.real();
            if (depth < 2 || roll < 0.35) {
                vmProg.push_back({ 0, SWord(rng.range(-50, 50)) });
                ++depth;
            } else if (roll < 0.6) {
                static const SWord bins[] = { 1, 2, 3, 7 };
                vmProg.push_back({ bins[rng.below(4)], 0 });
                --depth;
            } else if (roll < 0.75) {
                vmProg.push_back({ 4, 0 });
                ++depth;
            } else if (roll < 0.9) {
                vmProg.push_back({ 5, 0 });
            } else {
                vmProg.push_back({ 6, 0 });
            }
        }
    }
    Program vp = assembleOrDie(vmMainText(vmProg) + miniVmText() +
                               preludeText());
    NullBus nb;
    Machine vm(encodeProgram(vp), nb);
    vm.run();
    const MachineStats &d = vm.stats();
    std::printf("\nsecond workload (case-dispatch stack-VM "
                "interpreter, %zu instructions):\n",
                vmProg.size());
    std::printf("  let CPI %.2f (avg %.2f args), case CPI %.2f, "
                "result CPI %.2f\n",
                d.let.cpi(), d.avgLetArgs(), d.caseInstr.cpi(),
                d.result.cpi());
    std::printf("  total CPI %.2f (no GC), branch heads %.1f%% of "
                "dynamic instructions (paper: ~33%%)\n",
                d.cpiNoGc(), 100.0 * d.branchHeadFraction());

    if (metricsPath) {
        obs::Metrics metrics;
        m.exportMetrics(metrics, "icd.");
        vm.exportMetrics(metrics, "vm.");
        FILE *f = std::fopen(metricsPath, "w");
        if (!f) {
            std::fprintf(stderr, "cannot write %s\n", metricsPath);
            return 2;
        }
        std::string json = metrics.toJson();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("\nmetrics: %s\n", metricsPath);
    }
    return 0;
}
