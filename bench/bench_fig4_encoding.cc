/**
 * @file
 * Figure 4 — how high-level assembly lowers, one-to-one, into a Zarf
 * binary, demonstrated on the paper's own example: the list
 * constructors and the map function.
 *
 * Prints (a) the named assembly, (b) the machine assembly with
 * source/index operands and skip fields, and (c) the binary words
 * with a decode annotation per word, then verifies the round trip.
 */

#include <cstdio>

#include "isa/binary.hh"
#include "isa/encoding.hh"
#include "zasm/zasm.hh"

using namespace zarf;

namespace
{

const char *kMapText = R"(
con Nil
con Cons head tail

fun main =
  result 0

fun map f list =
  case list of
    Nil =>
      let e = Nil
      result e
    Cons head tail =>
      let head' = f head
      let tail' = map f tail
      let list' = Cons head' tail'
      result list'
  else
    let err = Error 0
    result err
)";

const char *
srcName(Src s)
{
    switch (s) {
      case Src::Local: return "local";
      case Src::Arg: return "arg";
      case Src::Imm: return "imm";
    }
    return "?";
}

void
annotate(Word w)
{
    switch (opOf(w)) {
      case Op::Info: {
        InfoWord i = unpackInfo(w);
        std::printf("%s  arity=%u locals=%u",
                    i.isCons ? "INFO cons" : "INFO fun", i.arity,
                    i.numLocals);
        return;
      }
      case Op::Let: {
        LetWord l = unpackLet(w);
        std::printf("LET   callee=%s 0x%x nargs=%u",
                    l.kind == CalleeKind::Func
                        ? "func"
                        : (l.kind == CalleeKind::Local ? "local"
                                                       : "arg"),
                    l.id, l.nargs);
        return;
      }
      case Op::Arg: {
        Operand o = unpackOperand(w);
        std::printf("ARG   %s %d", srcName(o.src), o.val);
        return;
      }
      case Op::Case: {
        Operand o = unpackCaseScrut(w);
        std::printf("CASE  %s %d", srcName(o.src), o.val);
        return;
      }
      case Op::PatLit: {
        PatWord p = unpackPat(w);
        std::printf("PAT   lit=%d skip=%u", p.lit, p.skip);
        return;
      }
      case Op::PatCons: {
        PatWord p = unpackPat(w);
        std::printf("PAT   cons=0x%x skip=%u", p.consId, p.skip);
        return;
      }
      case Op::PatElse:
        std::printf("PAT   else");
        return;
      case Op::Result: {
        Operand o = unpackResult(w);
        std::printf("RES   %s %d", srcName(o.src), o.val);
        return;
      }
    }
    std::printf("raw");
}

} // namespace

int
main()
{
    std::printf("=== Figure 4: map, from assembly to binary ===\n");

    std::printf("\n--- (a) high-level assembly ---\n%s", kMapText);

    Program prog = assembleOrDie(kMapText);
    std::printf("\n--- (b) machine assembly (lowered) ---\n%s",
                disassemble(prog).c_str());

    Image img = encodeProgram(prog);
    std::printf("--- (c) binary (%zu words) ---\n", img.size());
    for (size_t i = 0; i < img.size(); ++i) {
        std::printf("  %3zu: %08x  ", i, img[i]);
        if (i == 0)
            std::printf("MAGIC");
        else if (i == 1)
            std::printf("declaration count = %u", img[i]);
        else if (opOf(img[i]) == Op::Info || i >= 2)
            annotate(img[i]);
        std::printf("\n");
        // Raw length words follow info words; annotate them too.
        if (i >= 2 && opOf(img[i]) == Op::Info && i + 1 < img.size()) {
            std::printf("  %3zu: %08x  body length = %u words\n",
                        i + 1, img[i + 1], img[i + 1]);
            ++i;
        }
    }

    DecodeResult d = decodeProgram(img);
    std::printf("\nround trip: decode %s; re-encode %s\n",
                d.ok ? "ok" : "FAILED",
                d.ok && encodeProgram(d.program) == img
                    ? "byte-identical"
                    : "MISMATCH");
    std::printf("paper: \"each piece of the variable length "
                "instruction is word-aligned and trivial to "
                "decode\"\n");
    return 0;
}
