/**
 * @file
 * Ablation — garbage-collection policy (Sec. 5.2: "GC can be
 * configured to run at specific intervals or when memory usage
 * reaches a certain limit; for our application, to guarantee
 * real-time execution, the microkernel calls a hardware function to
 * invoke the garbage collector once each iteration").
 *
 * Compares the three policies on the same ICD workload and shows
 * why the paper's per-iteration discipline is the right real-time
 * choice: it trades a little total GC time for small, *predictable*
 * pauses, while exhaustion-only collection produces rare but large
 * pauses whose timing depends on heap size rather than the
 * application's deadline structure.
 */

#include <cstdio>

#include "ecg/synth.hh"
#include "icd/zarf_icd.hh"
#include "machine/machine.hh"
#include "system/ports.hh"

using namespace zarf;

namespace
{

class BusyRig : public IoBus
{
  public:
    explicit BusyRig(ecg::Heart &h) : heart(h) {}

    SWord
    getInt(SWord port) override
    {
        if (port == sys::kPortTimer)
            return 1;
        if (port == sys::kPortEcgIn)
            return heart.nextSample();
        return 0;
    }

    void
    putInt(SWord port, SWord) override
    {
        if (port == sys::kPortCommOut)
            ++iterations;
    }

    ecg::Heart &heart;
    uint64_t iterations = 0;
};

struct Row
{
    const char *name;
    uint64_t gcRuns;
    Cycles gcCycles;
    Cycles maxPause;
    uint64_t maxLive;
    double gcShare;
};

Row
runPolicy(const char *name, bool gcEachIteration,
          MachineConfig cfg)
{
    ecg::ScriptedHeart heart({ { 30.0, 75.0 }, { 60.0, 190.0 } },
                             42);
    BusyRig rig(heart);
    Machine m(icd::buildKernelImage(gcEachIteration), rig, cfg);
    while (rig.iterations < 6000 &&
           m.advance(2'000'000) == MachineStatus::Running) {}
    const MachineStats &s = m.stats();
    return Row{ name, s.gcRuns, s.gcCycles, s.gcMaxPauseCycles,
                s.gcMaxLiveWords,
                100.0 * double(s.gcCycles) /
                    double(s.execCycles + s.gcCycles) };
}

} // namespace

int
main()
{
    std::printf("=== Ablation: GC policy on the ICD workload "
                "(6000 iterations) ===\n\n");

    std::vector<Row> rows;

    // The paper's discipline: the kernel invokes the collector once
    // per iteration.
    {
        MachineConfig cfg;
        cfg.semispaceWords = 1u << 18;
        rows.push_back(runPolicy("per-iteration (paper)", true, cfg));
    }
    // Exhaustion-only, two heap sizes.
    {
        MachineConfig cfg;
        cfg.semispaceWords = 1u << 18;
        rows.push_back(runPolicy("exhaustion, 256Ki words", false,
                                 cfg));
    }
    {
        MachineConfig cfg;
        cfg.semispaceWords = 1u << 15;
        rows.push_back(runPolicy("exhaustion, 32Ki words", false,
                                 cfg));
    }
    // Periodic interval: once per 5 ms budget, and 10x that.
    {
        MachineConfig cfg;
        cfg.semispaceWords = 1u << 18;
        cfg.gcIntervalCycles = 250'000;
        rows.push_back(runPolicy("interval, 250k cycles", false,
                                 cfg));
    }
    {
        MachineConfig cfg;
        cfg.semispaceWords = 1u << 18;
        cfg.gcIntervalCycles = 2'500'000;
        rows.push_back(runPolicy("interval, 2.5M cycles", false,
                                 cfg));
    }

    std::printf("  %-24s %8s %12s %10s %10s %8s\n", "policy", "runs",
                "GC cycles", "max pause", "max live", "GC %");
    for (const Row &r : rows) {
        std::printf("  %-24s %8llu %12llu %10llu %10llu %7.1f%%\n",
                    r.name, (unsigned long long)r.gcRuns,
                    (unsigned long long)r.gcCycles,
                    (unsigned long long)r.maxPause,
                    (unsigned long long)r.maxLive, r.gcShare);
    }

    std::printf("\nreading: with a semispace trace collector every "
                "pause is bounded by the live set, not by garbage "
                "(paper: \"collection time is based on the live "
                "set\") — so all policies show similar worst pauses "
                "here. What the paper's per-iteration discipline "
                "buys is *placement*: collection happens at a fixed "
                "point in every iteration, so the WCET analysis can "
                "simply add one GC bound per iteration "
                "(bench_sec52_wcet) instead of reasoning about a "
                "pause landing at an arbitrary point relative to the "
                "deadline. The cost is total GC time (~31%% here vs "
                "~1%%), which the 32x deadline margin absorbs; the "
                "lazy policies also float more garbage (max live "
                "581 -> ~750 words).\n");
    return 0;
}
