/**
 * @file
 * Sec. 5.3 — non-interference: the integrity type system run over
 * the λ-layer assembly, plus dynamic validation of the soundness
 * theorem by untrusted-input perturbation.
 */

#include <cstdio>

#include "icd/zarf_icd.hh"
#include "lowlevel/extract.hh"
#include "verify/icd_types.hh"
#include "verify/nidemo.hh"
#include "verify/noninterference.hh"

using namespace zarf;
using namespace zarf::verify;

int
main()
{
    std::printf("=== Sec. 5.3: integrity / non-interference ===\n\n");

    // ---- The ICD kernel itself ----
    Program kernel = ll::extractOrDie(icd::buildKernelLowLevel());
    TypeEnv kenv = icdKernelTypeEnv(kernel);
    ITypeReport kr = checkIntegrity(kernel, kenv);
    std::printf("ICD kernel program (%zu declarations): %s\n",
                kernel.decls.size(),
                kr.ok() ? "WELL-TYPED — untrusted values cannot "
                          "affect the pacing output"
                        : "REJECTED");
    if (!kr.ok())
        std::printf("%s", kr.summary().c_str());

    TypeEnv bad = kenv;
    bad.ports[0] = Label::U; // sensor relabelled untrusted
    std::printf("same kernel, ECG port relabelled untrusted: %s\n",
                checkIntegrity(kernel, bad).ok()
                    ? "accepted (UNEXPECTED)"
                    : "rejected, as required\n");

    // ---- Demo application: checker verdict vs dynamic behaviour --
    std::printf("\ndemo (trusted control loop + untrusted "
                "telemetry):\n");
    std::printf("  %-14s %12s %26s\n", "variant", "type check",
                "perturbation experiment");

    std::vector<SWord> sensor;
    for (int i = 0; i < 64; ++i)
        sensor.push_back(i * 13 % 97 - 40);

    for (auto [variant, name] :
         { std::pair{ NiVariant::Clean, "clean" },
           std::pair{ NiVariant::ExplicitFlow, "explicit-flow" },
           std::pair{ NiVariant::ImplicitFlow, "implicit-flow" } }) {
        Program p = buildNiDemo(variant);
        TypeEnv env = niDemoTypeEnv(p);
        bool typed = checkIntegrity(p, env).ok();
        NiReport ni = perturbUntrusted(p, env, sensor, 11, 23);
        std::printf("  %-14s %12s %26s\n", name,
                    typed ? "accepted" : "rejected",
                    !ni.ran ? "did not run"
                    : ni.interference
                        ? "trusted outputs DIVERGED"
                        : "trusted outputs identical");
    }

    std::printf("\nsoundness, sampled: well-typed => no trusted "
                "divergence over 50 perturbation seeds... ");
    Program clean = buildNiDemo(NiVariant::Clean, 40);
    TypeEnv cenv = niDemoTypeEnv(clean);
    int bad_runs = 0;
    for (uint64_t s = 0; s < 50; ++s) {
        NiReport ni = perturbUntrusted(clean, cenv, sensor,
                                       s * 3 + 1, s * 5 + 2);
        bad_runs += ni.interference ? 1 : 0;
    }
    std::printf("%d/50 diverged %s\n", bad_runs,
                bad_runs == 0 ? "(theorem holds)" : "(VIOLATION)");

    std::printf("\npaper: \"we show that arbitrarily changing "
                "untrusted data cannot affect trusted data\" — the "
                "checker reproduces the type system; the experiment "
                "reproduces the theorem's observable content.\n");
    return 0;
}
