/**
 * @file
 * Host-side throughput of the λ-machine simulator: simulated cycles
 * and dynamic instructions retired per host second, across the full
 * dispatch-tier ladder (docs/PERF.md) — word-walk, predecoded µop,
 * direct-threaded, and fast-functional. This tracks simulator
 * performance only — the three cycle-accurate tiers execute the
 * same modelled hardware cycle for cycle, which bench_sec6_cpi and
 * the differential suite check; here we measure how fast the host
 * gets through them. The fast-functional tier drops the cycle model
 * entirely, so tiers are compared on dynamic instructions retired
 * per host second, a tier-invariant measure of program progress.
 *
 * Timing covers execution only: machine construction — semispace
 * zeroing, image load, and (on the µop-walking tiers) predecoding —
 * happens outside the timed region. Predecode is a once-per-load
 * cost paid to make every subsequent step cheaper, the same trade
 * the paper's hardware makes by latching decoded declaration
 * metadata; a loaded kernel then runs indefinitely (cf. the ICD
 * workload).
 *
 * Emits BENCH_host_throughput.json in the working directory. Pass
 * --smoke for a seconds-long CI canary run of the same matrix.
 */

#include <cmath>
#include <cstdio>
#include <cstring>

#include <chrono>
#include <functional>
#include <string>
#include <vector>

#include "bench_paths.hh"
#include "common_progs.hh"
#include "ecg/synth.hh"
#include "icd/zarf_icd.hh"
#include "isa/binary.hh"
#include "machine/machine.hh"
#include "support/random.hh"
#include "system/ports.hh"
#include "zasm/prelude.hh"
#include "zasm/samples.hh"
#include "zasm/zasm.hh"

using namespace zarf;

namespace
{

/** One timed run: simulated work done and host seconds spent. */
struct Sample
{
    double wallSec = 0;
    uint64_t simCycles = 0;
    uint64_t dynInstrs = 0;
};

/** One (workload, tier) measurement. */
struct Row
{
    std::string workload;
    DispatchTier tier = DispatchTier::Uop;
    Sample s;

    double cyclesPerSec() const { return s.simCycles / s.wallSec; }
    double instrsPerSec() const { return s.dynInstrs / s.wallSec; }
};

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/**
 * Run `once` (which constructs a fresh machine untimed, drives it,
 * and reports the simulated work plus the host seconds the driving
 * took) repeatedly until `minWall` timed seconds have accumulated,
 * so short workloads are measured over many instances.
 */
Sample
measure(const std::function<Sample()> &once, double minWall)
{
    // Warm-up instance: page in code and image.
    once();
    Sample total;
    do {
        Sample s = once();
        total.simCycles += s.simCycles;
        total.dynInstrs += s.dynInstrs;
        total.wallSec += s.wallSec;
    } while (total.wallSec < minWall);
    return total;
}

Sample
runToCompletion(const Image &img, MachineConfig cfg)
{
    NullBus bus;
    Machine m(img, bus, cfg);
    double t0 = now();
    Machine::Outcome o = m.run();
    double t1 = now();
    if (o.status != MachineStatus::Done) {
        std::fprintf(stderr, "workload did not finish: %s\n",
                     o.diagnostic.c_str());
        std::exit(1);
    }
    Sample s;
    s.wallSec = t1 - t0;
    s.simCycles = m.cycles();
    s.dynInstrs = m.stats().dynamicInstructions();
    return s;
}

/** Back-to-back ICD rig (as in bench_sec6_cpi). */
class BusyRig : public IoBus
{
  public:
    explicit BusyRig(ecg::Heart &h) : heart(h) {}

    SWord
    getInt(SWord port) override
    {
        if (port == sys::kPortTimer)
            return 1;
        if (port == sys::kPortEcgIn)
            return heart.nextSample();
        return 0;
    }

    void putInt(SWord, SWord) override {}

    ecg::Heart &heart;
};

/** bench::mapProgramText scaled up: map over an n-element list and
 *  fold it to a scalar, so the run is long enough for steady-state
 *  throughput to dominate the per-run fixed costs. */
std::string
mapLargeText(int n)
{
    std::string s = R"(
con Nil
con Cons head tail

fun main =
  let inc = addOne
  let xs = build )";
    s += std::to_string(n);
    s += R"(
  let ys = map inc xs
  let s = sumList ys
  result s

fun addOne x =
  let y = add x 1
  result y

fun build n =
  case n of
    0 =>
      let e = Nil
      result e
    else
      let n' = sub n 1
      let rest = build n'
      let l = Cons n rest
      result l

fun map f list =
  case list of
    Nil =>
      let e = Nil
      result e
    Cons head tail =>
      let head' = f head
      let tail' = map f tail
      let list' = Cons head' tail'
      result list'
  else
    let err = Error 0
    result err

fun sumList list =
  case list of
    Nil =>
      result 0
    Cons head tail =>
      let rest = sumList tail
      let s = add head rest
      result s
  else
    let err = Error 0
    result err
)";
    return s;
}

std::string
countdownText(int n)
{
    std::string s = "fun main =\n  let n = loop ";
    s += std::to_string(n);
    s += "\n  result n\n\n"
         "fun loop n =\n"
         "  case n of\n"
         "    0 =>\n"
         "      result 42\n"
         "    else\n"
         "      let n' = sub n 1\n"
         "      let r = loop n'\n"
         "      result r\n";
    return s;
}

std::vector<VmInstr>
vmWorkload(int len)
{
    Rng rng(7);
    std::vector<VmInstr> prog;
    int depth = 0;
    for (int i = 0; i < len; ++i) {
        double roll = rng.real();
        if (depth < 2 || roll < 0.35) {
            prog.push_back({ 0, SWord(rng.range(-50, 50)) });
            ++depth;
        } else if (roll < 0.6) {
            static const SWord bins[] = { 1, 2, 3, 7 };
            prog.push_back({ bins[rng.below(4)], 0 });
            --depth;
        } else if (roll < 0.75) {
            prog.push_back({ 4, 0 });
            ++depth;
        } else if (roll < 0.9) {
            prog.push_back({ 5, 0 });
        } else {
            prog.push_back({ 6, 0 });
        }
    }
    return prog;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    const double minWall = smoke ? 0.05 : 0.5;
    const int countdownN = smoke ? 5'000 : 150'000;
    const int vmLen = smoke ? 400 : 4'000;
    const Cycles icdCycles = smoke ? 400'000 : 6'000'000;

    struct Workload
    {
        std::string name;
        std::function<Sample(MachineConfig)> run;
    };
    std::vector<Workload> workloads;

    Image countdownImg =
        encodeProgram(assembleOrDie(countdownText(countdownN)));
    workloads.push_back({ "countdown", [&](MachineConfig cfg) {
        return runToCompletion(countdownImg, cfg);
    } });

    // Size the heap to the workload so the untimed per-instance
    // setup (semispace zeroing) stays cheap across many iterations.
    Image mapImg =
        encodeProgram(assembleOrDie(mapLargeText(smoke ? 50 : 400)));
    workloads.push_back({ "map", [&](MachineConfig cfg) {
        cfg.semispaceWords = 1u << 15;
        return runToCompletion(mapImg, cfg);
    } });

    Image vmImg = encodeProgram(assembleOrDie(
        vmMainText(vmWorkload(vmLen)) + miniVmText() +
        preludeText()));
    workloads.push_back({ "mini-vm", [&](MachineConfig cfg) {
        return runToCompletion(vmImg, cfg);
    } });

    // The ICD kernel never finishes, so the cycle-accurate tiers
    // run a fixed simulated-cycle budget. The fast tier has no
    // cycle clock; drive it to the same dynamic-instruction count
    // (measured once, untimed) so every tier does identical program
    // work.
    Image icdImg = icd::buildKernelImage();
    uint64_t icdInstrTarget = 0;
    {
        ecg::ScriptedHeart heart(
            { { 20.0, 75.0 }, { 40.0, 190.0 } }, 42);
        BusyRig rig(heart);
        Machine m(icdImg, rig, MachineConfig{});
        while (m.cycles() < icdCycles &&
               m.advance(500'000) == MachineStatus::Running) {}
        icdInstrTarget = m.stats().dynamicInstructions();
    }
    workloads.push_back({ "icd-kernel", [&](MachineConfig cfg) {
        ecg::ScriptedHeart heart(
            { { 20.0, 75.0 }, { 40.0, 190.0 } }, 42);
        BusyRig rig(heart);
        Machine m(icdImg, rig, cfg);
        bool byCycles = tierCycleAccurate(cfg.tier);
        double t0 = now();
        while ((byCycles
                    ? m.cycles() < icdCycles
                    : m.stats().dynamicInstructions() <
                          icdInstrTarget) &&
               m.advance(500'000) == MachineStatus::Running) {}
        double t1 = now();
        Sample s;
        s.wallSec = t1 - t0;
        s.simCycles = m.cycles();
        s.dynInstrs = m.stats().dynamicInstructions();
        return s;
    } });

    static const DispatchTier kTiers[] = {
        DispatchTier::WordWalk,
        DispatchTier::Uop,
        DispatchTier::Threaded,
        DispatchTier::FastFunctional,
    };
    constexpr size_t kNumTiers = 4;

    std::printf("=== host throughput: the dispatch-tier ladder%s "
                "===\n\n",
                smoke ? " (smoke)" : "");
    std::printf("  %-12s %-10s %10s %14s %14s\n", "workload",
                "tier", "host s", "Mcycles/s", "Minstr/s");

    std::vector<Row> rows;
    double logUop = 0, logThreaded = 0, logFast = 0;
    for (const Workload &w : workloads) {
        for (DispatchTier tier : kTiers) {
            MachineConfig cfg;
            cfg.tier = tier;
            Row row;
            row.workload = w.name;
            row.tier = tier;
            row.s = measure([&] { return w.run(cfg); }, minWall);
            std::printf("  %-12s %-10s %10.3f %14.2f %14.2f\n",
                        row.workload.c_str(),
                        dispatchTierName(tier), row.s.wallSec,
                        row.cyclesPerSec() / 1e6,
                        row.instrsPerSec() / 1e6);
            rows.push_back(std::move(row));
        }
        // Per-workload speedups, all relative to the adjacent rung
        // below on the ladder's instrs/s (a tier-invariant measure
        // of program progress).
        const Row *base = &rows[rows.size() - kNumTiers];
        double sUop = base[1].instrsPerSec() / base[0].instrsPerSec();
        double sThr = base[2].instrsPerSec() / base[1].instrsPerSec();
        double sFast =
            base[3].instrsPerSec() / base[1].instrsPerSec();
        logUop += std::log(sUop);
        logThreaded += std::log(sThr);
        logFast += std::log(sFast);
        std::printf("  %-12s uop-vs-word-walk %.2fx, "
                    "threaded-vs-uop %.2fx, fast-vs-uop %.2fx\n\n",
                    w.name.c_str(), sUop, sThr, sFast);
    }
    double geomeanUop = std::exp(logUop / workloads.size());
    double geomeanThreaded = std::exp(logThreaded / workloads.size());
    double geomeanFast = std::exp(logFast / workloads.size());
    std::printf("  geomean speedups: uop-vs-word-walk %.2fx, "
                "threaded-vs-uop %.2fx, fast-vs-uop %.2fx\n\n",
                geomeanUop, geomeanThreaded, geomeanFast);

    // Machine-readable results for trend tracking, at the repo root
    // so CI can archive them from a fixed location.
    std::string outPath =
        benchio::repoRootedPath("BENCH_host_throughput.json");
    FILE *f = std::fopen(outPath.c_str(), "w");
    if (!f) {
        std::perror(outPath.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"smoke\": %s,\n  \"rows\": [\n",
                 smoke ? "true" : "false");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            f,
            "    {\"workload\": \"%s\", \"tier\": \"%s\", "
            "\"wall_sec\": %.6f, \"sim_cycles\": %llu, "
            "\"dyn_instrs\": %llu, \"cycles_per_sec\": %.1f, "
            "\"instrs_per_sec\": %.1f}%s\n",
            r.workload.c_str(), dispatchTierName(r.tier),
            r.s.wallSec, (unsigned long long)r.s.simCycles,
            (unsigned long long)r.s.dynInstrs, r.cyclesPerSec(),
            r.instrsPerSec(), i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"geomean_speedup\": %.3f,\n"
                 "  \"geomean_threaded_vs_uop\": %.3f,\n"
                 "  \"geomean_fast_vs_uop\": %.3f\n}\n",
                 geomeanUop, geomeanThreaded, geomeanFast);
    std::fclose(f);
    std::printf("wrote %s\n", outPath.c_str());
    return 0;
}
