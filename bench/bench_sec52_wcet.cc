/**
 * @file
 * Sec. 5.2 — the static timing analysis: worst-case execution and
 * garbage-collection bounds for one iteration of the ICD kernel
 * loop, checked against the 5 ms real-time deadline and against
 * observed executions on the cycle-level machine.
 *
 * Paper reference values: worst loop 4,686 cycles, GC bound 4,379,
 * total 9,065 cycles = 181.3 µs at 50 MHz, vs. a 5 ms deadline
 * ("over 25 times faster than it needs to be"); applying two
 * arguments to an ALU primitive costs at most 30 cycles.
 */

#include <cstdio>

#include "icd/baseline.hh"
#include "icd/zarf_icd.hh"
#include "lowlevel/extract.hh"
#include "system/system.hh"
#include "verify/wcet.hh"

using namespace zarf;

int
main()
{
    std::printf("=== Sec. 5.2: worst-case timing analysis ===\n\n");

    TimingModel t;
    std::printf("primitive-apply worst case: %llu cycles "
                "(paper bound: 30)\n\n",
                (unsigned long long)primApplyWorstCase(t));

    Program kernel = ll::extractOrDie(icd::buildKernelLowLevel());
    verify::WcetConfig cfg;
    cfg.boundaryFunctions = { "kernelLoop", "waitTick" };
    verify::WcetReport r =
        verify::analyzeWcet(kernel, "kernelLoop", cfg);
    if (!r.ok) {
        std::printf("analysis failed: %s\n", r.error.c_str());
        return 1;
    }

    double usTotal = double(r.totalBound()) * 20.0 / 1000.0;
    std::printf("one kernel iteration (static bounds):\n%s",
                r.summary().c_str());
    std::printf("  at 50 MHz: %.1f us against the 5 ms deadline "
                "(%.0fx margin)\n\n",
                usTotal, 5000.0 / usTotal);

    std::printf("  %-28s %14s %14s\n", "", "this work", "paper");
    std::printf("  %-28s %14llu %14u\n", "execution bound (cycles)",
                (unsigned long long)r.execBound, 4686);
    std::printf("  %-28s %14llu %14u\n", "GC bound (cycles)",
                (unsigned long long)r.gcBound, 4379);
    std::printf("  %-28s %14llu %14u\n", "total (cycles)",
                (unsigned long long)r.totalBound(), 9065);
    std::printf("  %-28s %14.1f %14.1f\n", "total (us @ 50 MHz)",
                usTotal, 181.3);
    std::printf("  %-28s %14.0fx %14.0fx\n", "real-time margin",
                5000.0 / usTotal, 5000.0 / 181.3);

    std::printf("\nper-function worst cases (selected):\n");
    for (const char *n : { "icdStep", "lpStep", "hpStep", "dvStep",
                           "mwStep", "detStep", "atpStep",
                           "countFast", "ioCoroutine" }) {
        auto it = r.functions.find(n);
        if (it != r.functions.end()) {
            std::printf("  %-14s %8llu cycles, %5llu words "
                        "allocated worst-case\n",
                        n,
                        (unsigned long long)it->second.worstCycles,
                        (unsigned long long)it->second.allocWords);
        }
    }

    // Validate against an observed run.
    std::printf("\nvalidation against the cycle-level machine:\n");
    ecg::ScriptedHeart heart({ { 8.0, 75.0 }, { 20.0, 190.0 } }, 21);
    sys::TwoLayerSystem system(icd::buildKernelImage(),
                               icd::monitorProgram(), heart);
    system.runForMs(25000.0);
    const MachineStats &s = system.lambdaStats();
    std::printf("  observed worst iteration: %llu cycles (bound "
                "%llu) %s\n",
                (unsigned long long)system.maxIterationCycles(),
                (unsigned long long)r.execBound,
                system.maxIterationCycles() <= r.execBound
                    ? "— bound holds"
                    : "— VIOLATED");
    std::printf("  observed mean GC: %llu cycles (bound %llu) %s\n",
                (unsigned long long)(s.gcRuns ? s.gcCycles / s.gcRuns
                                              : 0),
                (unsigned long long)r.gcBound,
                s.gcRuns && s.gcCycles / s.gcRuns <= r.gcBound
                    ? "— bound holds"
                    : "— VIOLATED");
    std::printf("  deadline missed in 25 s of operation: %s\n",
                system.deadlineMissed() ? "YES" : "no");
    return 0;
}
