/**
 * @file
 * Ablation — semispace sizing. The classic copying-collector
 * trade-off: a larger heap amortizes collection over more allocation
 * (GC overhead falls) while each pause stays bounded by the live set
 * regardless. Run on the ICD workload with exhaustion-only
 * collection so the heap size is the only collection trigger.
 */

#include <cstdio>

#include "ecg/synth.hh"
#include "icd/zarf_icd.hh"
#include "machine/machine.hh"
#include "system/ports.hh"

using namespace zarf;

namespace
{

class BusyRig : public IoBus
{
  public:
    explicit BusyRig(ecg::Heart &h) : heart(h) {}

    SWord
    getInt(SWord port) override
    {
        if (port == sys::kPortTimer)
            return 1;
        if (port == sys::kPortEcgIn)
            return heart.nextSample();
        return 0;
    }

    void
    putInt(SWord port, SWord) override
    {
        if (port == sys::kPortCommOut)
            ++iterations;
    }

    ecg::Heart &heart;
    uint64_t iterations = 0;
};

} // namespace

int
main()
{
    std::printf("=== Ablation: semispace size (exhaustion-only "
                "collection, 4000 ICD iterations) ===\n\n");
    std::printf("  %10s %8s %12s %10s %10s %8s\n", "semispace",
                "GC runs", "GC cycles", "max pause", "max live",
                "GC %");

    for (size_t shift : { 13u, 14u, 15u, 16u, 18u, 20u }) {
        ecg::ScriptedHeart heart({ { 60.0, 75.0 } }, 42);
        BusyRig rig(heart);
        MachineConfig cfg;
        cfg.semispaceWords = size_t(1) << shift;
        Machine m(icd::buildKernelImage(false), rig, cfg);
        while (rig.iterations < 4000 &&
               m.advance(2'000'000) == MachineStatus::Running) {}
        const MachineStats &s = m.stats();
        std::printf("  %8zuKi %8llu %12llu %10llu %10llu %7.2f%%\n",
                    (size_t(1) << shift) / 1024,
                    (unsigned long long)s.gcRuns,
                    (unsigned long long)s.gcCycles,
                    (unsigned long long)s.gcMaxPauseCycles,
                    (unsigned long long)s.gcMaxLiveWords,
                    100.0 * double(s.gcCycles) /
                        double(s.execCycles + s.gcCycles));
    }

    std::printf("\nreading: pause stays flat (live-set bound) while "
                "total GC time falls inversely with heap size — the "
                "paper's semispace design lets the 5 ms deadline "
                "argument rest on the live set alone, with heap "
                "capacity a pure throughput knob.\n");
    return 0;
}
