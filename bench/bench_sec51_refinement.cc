/**
 * @file
 * Sec. 5.1 — correctness of the ICD's critical path, reproduced as
 * lock-step refinement checking: for the same input stream, the
 * stream specification, the extracted Zarf assembly, and the
 * imperative baseline must emit bit-identical outputs at every
 * sample, across normal rhythm, a therapy-triggering VT episode,
 * and adversarial inputs.
 */

#include <cstdio>
#include <vector>

#include "ecg/synth.hh"
#include "icd/zarf_icd.hh"
#include "support/random.hh"
#include "verify/refine.hh"

using namespace zarf;

namespace
{

std::vector<SWord>
fromHeart(ecg::Heart &h, int n)
{
    std::vector<SWord> v;
    v.reserve(size_t(n));
    for (int i = 0; i < n; ++i)
        v.push_back(h.nextSample());
    return v;
}

void
report(const char *name, const verify::RefinementReport &r)
{
    if (r.ok) {
        std::printf("  %-34s ok (%zu samples, outputs "
                    "bit-identical)\n",
                    name, r.samplesChecked);
    } else {
        std::printf("  %-34s FAILED at sample %zu: %s\n", name,
                    r.firstMismatch, r.detail.c_str());
    }
}

} // namespace

int
main()
{
    std::printf("=== Sec. 5.1: refinement of the critical path "
                "===\n\n");
    Program zarfIcd = icd::buildIcdStepProgram();

    std::printf("spec == extracted Zarf assembly:\n");
    {
        ecg::ScriptedHeart h({ { 20.0, 75.0 } }, 42);
        auto in = fromHeart(h, 4000);
        report("normal sinus (20 s)",
               verify::checkSpecVsZarf(zarfIcd, in));
    }
    {
        ecg::ScriptedHeart h({ { 12.0, 75.0 }, { 40.0, 190.0 } }, 5);
        auto in = fromHeart(h, 10400);
        report("VT + full ATP therapy (52 s)",
               verify::checkSpecVsZarf(zarfIcd, in));
    }
    {
        Rng rng(77);
        std::vector<SWord> in;
        for (int i = 0; i < 2000; ++i)
            in.push_back(SWord(rng.range(-4000, 4000)));
        report("adversarial full-scale noise",
               verify::checkSpecVsZarf(zarfIcd, in));
    }

    std::printf("\nspec == imperative baseline (mblaze):\n");
    {
        ecg::ScriptedHeart h({ { 20.0, 75.0 } }, 42);
        report("normal sinus (20 s)",
               verify::checkSpecVsBaseline(fromHeart(h, 4000)));
    }
    {
        ecg::ScriptedHeart h({ { 12.0, 75.0 }, { 40.0, 190.0 } }, 5);
        report("VT + full ATP therapy (52 s)",
               verify::checkSpecVsBaseline(fromHeart(h, 10400)));
    }

    std::printf("\npaper: the Coq proof shows output equality for "
                "all input streams by induction; this harness "
                "checks the same refinement relation point-wise on "
                "generated streams (TCB: the extractor and this "
                "harness).\n");
    return 0;
}
