/**
 * @file
 * Sec. 6 — the λ-execution layer vs. the unverified C alternative on
 * the imperative core: per-iteration cycle counts, the slowdown
 * factor, and the real-time margin.
 *
 * Paper reference: the C version takes under 1,000 cycles per
 * iteration on the MicroBlaze; the λ-layer's worst case is ~9,000
 * cycles (~20x slower than the MicroBlaze common case, also
 * accounting for the 2x cycle-time difference) yet still more than
 * 25x faster than the 5 ms deadline requires.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "ecg/synth.hh"
#include "icd/baseline.hh"
#include "icd/zarf_icd.hh"
#include "lowlevel/extract.hh"
#include "machine/machine.hh"
#include "mblaze/cpu.hh"
#include "system/ports.hh"
#include "verify/wcet.hh"

using namespace zarf;

namespace
{

/** Measures per-iteration cycles with an always-ready timer. */
class MeterRig : public IoBus
{
  public:
    explicit MeterRig(ecg::Heart &h) : heart(h) {}

    SWord
    getInt(SWord port) override
    {
        if (port == sys::kPortTimer)
            return 1;
        if (port == sys::kPortEcgIn)
            return heart.nextSample();
        return 0;
    }

    void
    putInt(SWord port, SWord) override
    {
        if (port == sys::kPortCommOut)
            ++iterations;
    }

    ecg::Heart &heart;
    uint64_t iterations = 0;
};

} // namespace

int
main()
{
    std::printf("=== Sec. 6: verified lambda-layer vs unverified C "
                "on the imperative core ===\n\n");

    const uint64_t kIters = 8000; // 40 s of samples, incl. VT

    // ---- Imperative baseline ----
    ecg::ScriptedHeart h1({ { 20.0, 75.0 }, { 60.0, 190.0 } }, 5);
    MeterRig rig1(h1);
    mblaze::MbCpu cpu(icd::baselineIcdProgram(), rig1);
    while (rig1.iterations < kIters &&
           cpu.advance(1'000'000) == mblaze::MbStatus::Running) {}
    double mbPerIter = double(cpu.cycles()) / double(rig1.iterations);

    // ---- λ-execution layer (typical case, measured) ----
    ecg::ScriptedHeart h2({ { 20.0, 75.0 }, { 60.0, 190.0 } }, 5);
    MeterRig rig2(h2);
    Machine m(icd::buildKernelImage(), rig2);
    while (rig2.iterations < kIters &&
           m.advance(4'000'000) == MachineStatus::Running) {}
    const MachineStats &s = m.stats();
    double lamPerIter =
        double(m.cycles() - s.loadCycles) / double(rig2.iterations);

    // ---- λ-execution layer (worst case, static) ----
    Program kernel = ll::extractOrDie(icd::buildKernelLowLevel());
    verify::WcetConfig cfg;
    cfg.boundaryFunctions = { "kernelLoop", "waitTick" };
    verify::WcetReport w =
        verify::analyzeWcet(kernel, "kernelLoop", cfg);

    std::printf("  %-40s %12s %12s\n", "", "this work", "paper");
    std::printf("  %-40s %12.0f %12s\n",
                "MicroBlaze cycles/iteration (typical)", mbPerIter,
                "<1000");
    std::printf("  %-40s %12.0f %12s\n",
                "lambda-layer cycles/iteration (typical)",
                lamPerIter, "~");
    std::printf("  %-40s %12llu %12u\n",
                "lambda-layer cycles/iteration (worst)",
                (unsigned long long)w.totalBound(), 9065);

    // Wall-clock comparison: λ at 20 ns/cycle, MicroBlaze at 10 ns.
    double lamWorstUs = double(w.totalBound()) * 20.0 / 1000.0;
    double mbUs = mbPerIter * 10.0 / 1000.0;
    std::printf("  %-40s %12.1f %12s\n",
                "MicroBlaze us/iteration (typical)", mbUs, "<10");
    std::printf("  %-40s %12.1f %12.1f\n",
                "lambda-layer us/iteration (worst)", lamWorstUs,
                181.3);
    std::printf("  %-40s %11.1fx %12s\n",
                "slowdown (worst lambda vs typical C, wall)",
                lamWorstUs / mbUs, "~20x");
    std::printf("  %-40s %11.1fx %12s\n", "real-time margin (5 ms)",
                5000.0 / lamWorstUs, ">25x");

    std::printf("\nshape check: the imperative core wins on raw "
                "speed by an order of magnitude, and the verified "
                "functional layer still beats its deadline by more "
                "than an order of magnitude — the paper's "
                "conclusion.\n");
    std::printf("both implementations produced %llu and %llu "
                "iterations with bit-identical outputs (see "
                "bench_sec51_refinement).\n",
                (unsigned long long)rig1.iterations,
                (unsigned long long)rig2.iterations);
    return 0;
}
