/**
 * @file
 * Throughput of the concolic symbolic executor (docs/SYMBOLIC.md):
 * paths explored per wall-clock second, and the fraction of feasible
 * paths that survive full concretize-and-replay validation against
 * the differential oracle. Three rungs isolate where the time goes:
 *
 *   explore           symbolic evaluation + path enumeration only
 *   +solve            ... plus solving every path condition
 *   +solve+replay     ... plus oracle replay of every Sat model
 *                     (the configuration `ctest -L sym` and the
 *                     nightly corpus sweep actually run)
 *
 * Emits BENCH_sym_throughput.json at the repo root.
 *
 *   bench_sym [--seed N] [--programs N] [--threads N] [--smoke]
 *
 * --smoke runs a small fixed-seed sweep and exits nonzero on any
 * divergence (a real bug in either the symbolic semantics or the
 * machine) or when full-rung throughput falls below the 200
 * paths/sec acceptance floor. Under asan/ubsan the floor is
 * informational only.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_paths.hh"
#include "fuzz/genprog.hh"
#include "isa/binary.hh"
#include "sym/concolic.hh"
#include "sym/explore.hh"
#include "verify/parallel.hh"

using namespace zarf;
using namespace zarf::sym;

#if defined(__SANITIZE_ADDRESS__)
#define ZARF_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ZARF_SANITIZED 1
#endif
#endif
#ifndef ZARF_SANITIZED
#define ZARF_SANITIZED 0
#endif

namespace
{

struct Totals
{
    uint64_t programs = 0;
    uint64_t paths = 0;
    uint64_t feasible = 0;
    uint64_t replayed = 0;
    uint64_t diverged = 0;
};

Image
genImage(uint64_t seed)
{
    fuzz::GenConfig gc;
    fuzz::ProgramGenerator gen(seed, gc);
    return encodeProgram(gen.generate().build());
}

ConcolicConfig
benchConfig()
{
    ConcolicConfig cfg;
    cfg.eval.maxVars = 6;
    cfg.eval.maxChoices = 16;
    cfg.explore.maxPaths = 24;
    cfg.threads = 1; // parallelism is across programs
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t seed = 1;
    uint64_t programs = 256;
    unsigned threads = 0;
    bool smoke = false;

    for (int i = 1; i < argc; ++i) {
        if (!strcmp(argv[i], "--seed") && i + 1 < argc) {
            seed = uint64_t(atoll(argv[++i]));
        } else if (!strcmp(argv[i], "--programs") && i + 1 < argc) {
            programs = uint64_t(atoll(argv[++i]));
        } else if (!strcmp(argv[i], "--threads") && i + 1 < argc) {
            threads = unsigned(atoi(argv[++i]));
        } else if (!strcmp(argv[i], "--smoke")) {
            smoke = true;
            programs = 64;
        } else {
            fprintf(stderr,
                    "usage: %s [--seed N] [--programs N] "
                    "[--threads N] [--smoke]\n",
                    argv[0]);
            return 2;
        }
    }

    struct Rung
    {
        const char *name;
        bool solve;
        bool replay;
        Totals t;
        double secs = 0;
        double rate = 0;
    };
    std::vector<Rung> rungs = {
        { "explore", false, false, {}, 0, 0 },
        { "+solve", true, false, {}, 0, 0 },
        { "+solve+replay", true, true, {}, 0, 0 },
    };

    printf("=== sym throughput: %llu generated programs%s ===\n\n",
           (unsigned long long)programs, smoke ? " (smoke)" : "");
    for (Rung &r : rungs) {
        verify::ParallelConfig pc;
        pc.threads = threads;
        pc.seedBase = seed;
        pc.shards = size_t(programs);
        auto t0 = std::chrono::steady_clock::now();
        std::vector<Totals> shards = verify::shardMap(
            pc, [&](size_t shard, uint64_t) -> Totals {
                Totals t;
                Image img = genImage(seed + shard);
                if (!r.solve) {
                    DecodeResult dec = decodeProgram(img);
                    if (!dec.ok)
                        return t;
                    SymEvalConfig ec = benchConfig().eval;
                    SymEval ev(dec.program, ec);
                    ExploreResult ex =
                        explorePaths(ev, benchConfig().explore);
                    t.programs = 1;
                    t.paths = ex.paths.size();
                    return t;
                }
                ConcolicConfig cfg = benchConfig();
                cfg.replay = r.replay;
                ConcolicReport rep = runConcolic(img, cfg);
                if (!rep.originalUsable)
                    return t;
                t.programs = 1;
                t.paths = rep.paths.size();
                t.feasible = rep.feasiblePaths;
                t.replayed = rep.replayedPaths;
                t.diverged = rep.divergedPaths;
                return t;
            });
        for (const Totals &s : shards) {
            r.t.programs += s.programs;
            r.t.paths += s.paths;
            r.t.feasible += s.feasible;
            r.t.replayed += s.replayed;
            r.t.diverged += s.diverged;
        }
        r.secs = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
        r.rate = r.secs > 0 ? double(r.t.paths) / r.secs : 0;
        printf("  %-14s %6llu paths in %7.3f s = %8.0f paths/sec\n",
               r.name, (unsigned long long)r.t.paths, r.secs,
               r.rate);
        if (r.replay) {
            double frac =
                r.t.feasible
                    ? double(r.t.replayed) / double(r.t.feasible)
                    : 1.0;
            printf("  %-14s %llu/%llu feasible paths "
                   "replay-validated (%.1f%%), %llu divergences\n",
                   "", (unsigned long long)r.t.replayed,
                   (unsigned long long)r.t.feasible, 100.0 * frac,
                   (unsigned long long)r.t.diverged);
        }
        printf("\n");
    }

    std::string outPath =
        benchio::repoRootedPath("BENCH_sym_throughput.json");
    FILE *f = fopen(outPath.c_str(), "w");
    if (f) {
        fprintf(f,
                "{\n  \"smoke\": %s,\n  \"programs\": %llu,\n"
                "  \"rows\": [\n",
                smoke ? "true" : "false",
                (unsigned long long)programs);
        for (size_t i = 0; i < rungs.size(); ++i) {
            const Rung &r = rungs[i];
            double frac =
                r.t.feasible
                    ? double(r.t.replayed) / double(r.t.feasible)
                    : 1.0;
            fprintf(f,
                    "    {\"rung\": \"%s\", \"paths\": %llu, "
                    "\"wall_sec\": %.6f, "
                    "\"paths_per_sec\": %.1f, "
                    "\"feasible\": %llu, \"replayed\": %llu, "
                    "\"replay_validated_fraction\": %.4f, "
                    "\"diverged\": %llu}%s\n",
                    r.name, (unsigned long long)r.t.paths, r.secs,
                    r.rate, (unsigned long long)r.t.feasible,
                    (unsigned long long)r.t.replayed, frac,
                    (unsigned long long)r.t.diverged,
                    i + 1 < rungs.size() ? "," : "");
        }
        fprintf(f, "  ]\n}\n");
        fclose(f);
        printf("wrote %s\n", outPath.c_str());
    } else {
        perror(outPath.c_str());
    }

    const Rung &full = rungs.back();
    if (full.t.diverged) {
        printf("  FAIL: %llu divergences\n",
               (unsigned long long)full.t.diverged);
        return 1;
    }
    if (smoke && full.rate < 200.0) {
        if (ZARF_SANITIZED) {
            printf("  below the 200 paths/sec floor "
                   "(informational: sanitized build)\n");
        } else {
            printf("  FAIL: below the 200 paths/sec floor\n");
            return 1;
        }
    }
    return 0;
}
