/**
 * @file
 * Analysis-IR cost model: what lifting costs, and what the reference
 * IR evaluation costs next to the µop machine it mirrors.
 *
 * Three rows over one fixed-seed generated workload:
 *
 *   lift         images lifted to IR per second (and words/sec) —
 *                the price every IR consumer pays once per image
 *   machine-uop  λ-cycles per host-second executing on the machine
 *   ir-eval      λ-cycles per host-second on the IR evaluator, with
 *                every run cross-checked bit-exact against the
 *                machine (outcome, value-class, cycles, I/O length)
 *
 * Emits BENCH_ir_throughput.json at the repo root.
 *
 *   bench_ir [--seed N] [--programs N] [--reps N] [--smoke]
 *
 * --smoke shrinks the workload and exits nonzero when lift
 * throughput falls below the 2,000 lifts/sec acceptance floor, or
 * when any cross-check fails (which would be a real bug, not a perf
 * regression). Under asan/ubsan the floor is informational only.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_paths.hh"
#include "fuzz/genprog.hh"
#include "fuzz/oracle.hh"
#include "ir/eval.hh"
#include "ir/lift.hh"
#include "isa/encoding.hh"
#include "machine/machine.hh"

using namespace zarf;

#if defined(__SANITIZE_ADDRESS__)
#define ZARF_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ZARF_SANITIZED 1
#endif
#endif
#ifndef ZARF_SANITIZED
#define ZARF_SANITIZED 0
#endif

namespace
{

double
secsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t seed = 1;
    size_t nPrograms = 96;
    size_t reps = 50;
    bool smoke = false;

    for (int i = 1; i < argc; ++i) {
        if (!strcmp(argv[i], "--seed") && i + 1 < argc) {
            seed = uint64_t(atoll(argv[++i]));
        } else if (!strcmp(argv[i], "--programs") && i + 1 < argc) {
            nPrograms = size_t(atoll(argv[++i]));
        } else if (!strcmp(argv[i], "--reps") && i + 1 < argc) {
            reps = size_t(atoll(argv[++i]));
        } else if (!strcmp(argv[i], "--smoke")) {
            smoke = true;
            nPrograms = 48;
            reps = 10;
        } else {
            fprintf(stderr,
                    "usage: %s [--seed N] [--programs N] [--reps N] "
                    "[--smoke]\n",
                    argv[0]);
            return 2;
        }
    }

    // Fixed-seed workload: generated programs the machine runs to
    // completion (Done or Stuck) within a modest budget.
    std::vector<Image> images;
    size_t totalWords = 0;
    for (uint64_t s = seed; images.size() < nPrograms; ++s) {
        fuzz::ProgramGenerator gen(s);
        BuildResult b = gen.generate().tryBuild();
        if (!b.ok)
            continue;
        Image img = encodeProgram(b.program);
        if (!ir::liftImage(img).ok)
            continue; // loader-rejected: not part of the workload
        fuzz::RecordBus bus;
        MachineConfig mc;
        mc.semispaceWords = 1u << 15;
        Machine m(img, bus, mc);
        Machine::Outcome o = m.run(200'000);
        if (o.status != MachineStatus::Done &&
            o.status != MachineStatus::Stuck)
            continue;
        totalWords += img.size();
        images.push_back(std::move(img));
    }

    printf("=== analysis-IR throughput (%zu programs, %zu words)"
           "%s ===\n\n",
           images.size(), totalWords, smoke ? " (smoke)" : "");

    // ---- Row 1: lift throughput -------------------------------
    size_t lifts = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (size_t r = 0; r < reps; ++r) {
        for (const Image &img : images) {
            ir::LiftResult lift = ir::liftImage(img);
            if (!lift.ok) {
                fprintf(stderr, "lift regressed: %s\n",
                        lift.error.c_str());
                return 1;
            }
            ++lifts;
        }
    }
    double liftSecs = secsSince(t0);
    double liftsPerSec = liftSecs > 0 ? double(lifts) / liftSecs : 0;
    double wordsPerSec =
        liftSecs > 0 ? double(totalWords * reps) / liftSecs : 0;
    printf("  %-12s %7zu lifts in %7.3f s = %9.0f lifts/sec "
           "(%.2e words/sec)\n",
           "lift", lifts, liftSecs, liftsPerSec, wordsPerSec);

    // ---- Rows 2+3: machine vs. IR evaluation ------------------
    struct EvalRow
    {
        uint64_t cycles = 0;
        size_t runs = 0;
        double secs = 0;
    } mach, ireval;

    size_t mismatches = 0;
    for (size_t r = 0; r < reps; ++r) {
        for (const Image &img : images) {
            fuzz::RecordBus mb;
            MachineConfig mc;
            mc.semispaceWords = 1u << 15;
            auto m0 = std::chrono::steady_clock::now();
            Machine m(img, mb, mc);
            Machine::Outcome mo = m.run(200'000);
            mach.secs += secsSince(m0);
            mach.cycles += m.cycles();
            ++mach.runs;

            ir::LiftResult lift = ir::liftImage(img);
            fuzz::RecordBus ib;
            ir::EvalConfig ic;
            ic.maxCycles = 200'000;
            auto i0 = std::chrono::steady_clock::now();
            ir::Outcome io = ir::evalModule(lift.module, ib, ic);
            ireval.secs += secsSince(i0);
            ireval.cycles += io.cycles;
            ++ireval.runs;

            bool mDone = mo.status == MachineStatus::Done;
            bool iDone = io.status == ir::Outcome::Status::Done;
            if (mDone != iDone || io.cycles != m.cycles() ||
                !(mb.ops == ib.ops))
                ++mismatches;
        }
    }
    auto report = [](const char *name, const EvalRow &e) {
        double cps = e.secs > 0 ? double(e.cycles) / e.secs : 0;
        printf("  %-12s %7zu runs, %10llu lambda-cycles in %7.3f s "
               "= %.2e cycles/sec\n",
               name, e.runs, (unsigned long long)e.cycles, e.secs,
               cps);
        return cps;
    };
    double machCps = report("machine-uop", mach);
    double irCps = report("ir-eval", ireval);
    if (machCps > 0 && irCps > 0)
        printf("\n  ir-eval runs at %.0f%% of the machine's "
               "cycle rate; %zu cross-check mismatches\n\n",
               100.0 * irCps / machCps, mismatches);

    std::string outPath =
        benchio::repoRootedPath("BENCH_ir_throughput.json");
    FILE *f = fopen(outPath.c_str(), "w");
    if (f) {
        fprintf(f,
                "{\n  \"smoke\": %s,\n  \"programs\": %zu,\n"
                "  \"image_words\": %zu,\n  \"rows\": [\n",
                smoke ? "true" : "false", images.size(), totalWords);
        fprintf(f,
                "    {\"phase\": \"lift\", \"lifts\": %zu, "
                "\"wall_sec\": %.6f, \"lifts_per_sec\": %.1f, "
                "\"words_per_sec\": %.1f},\n",
                lifts, liftSecs, liftsPerSec, wordsPerSec);
        fprintf(f,
                "    {\"phase\": \"machine-uop\", \"runs\": %zu, "
                "\"lambda_cycles\": %llu, \"wall_sec\": %.6f, "
                "\"cycles_per_sec\": %.1f},\n",
                mach.runs, (unsigned long long)mach.cycles,
                mach.secs, machCps);
        fprintf(f,
                "    {\"phase\": \"ir-eval\", \"runs\": %zu, "
                "\"lambda_cycles\": %llu, \"wall_sec\": %.6f, "
                "\"cycles_per_sec\": %.1f, \"mismatches\": %zu}\n",
                ireval.runs, (unsigned long long)ireval.cycles,
                ireval.secs, irCps, mismatches);
        fprintf(f, "  ]\n}\n");
        fclose(f);
        printf("wrote %s\n", outPath.c_str());
    } else {
        perror(outPath.c_str());
    }

    if (mismatches) {
        printf("  FAIL: %zu machine-vs-ir cross-check mismatches\n",
               mismatches);
        return 1;
    }
    if (smoke && liftsPerSec < 2000.0) {
        if (ZARF_SANITIZED) {
            printf("  below the 2000 lifts/sec floor "
                   "(informational: sanitized build)\n");
        } else {
            printf("  FAIL: below the 2000 lifts/sec floor\n");
            return 1;
        }
    }
    return 0;
}
