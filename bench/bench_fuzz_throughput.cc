/**
 * @file
 * Differential-oracle throughput of the conformance fuzzer
 * (docs/TESTING.md). One oracle execution runs a candidate through
 * all four evaluators plus the snapshot replay, so this is the
 * number that sizes nightly campaigns: candidates per wall-clock
 * second across the verify worker pool.
 *
 *   bench_fuzz_throughput [--seed N] [--rounds N] [--per-round N]
 *                         [--threads N] [--smoke]
 *
 * --smoke runs a small fixed-seed campaign and exits nonzero when
 * throughput falls below the 1,000 execs/sec acceptance floor (or
 * when the campaign finds a divergence, which would be a real bug).
 * Under asan/ubsan the floor is informational only — the sanitize
 * preset still runs the campaign (every candidate executes under
 * the sanitizers) but an order-of-magnitude slowdown is expected.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fuzz/fuzzer.hh"

using namespace zarf;
using namespace zarf::fuzz;

#if defined(__SANITIZE_ADDRESS__)
#define ZARF_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ZARF_SANITIZED 1
#endif
#endif
#ifndef ZARF_SANITIZED
#define ZARF_SANITIZED 0
#endif

int
main(int argc, char **argv)
{
    FuzzConfig cfg;
    cfg.rounds = 16;
    cfg.perRound = 128;
    cfg.maxDivergences = 1;
    bool smoke = false;

    for (int i = 1; i < argc; ++i) {
        if (!strcmp(argv[i], "--seed") && i + 1 < argc) {
            cfg.seed = uint64_t(atoll(argv[++i]));
        } else if (!strcmp(argv[i], "--rounds") && i + 1 < argc) {
            cfg.rounds = size_t(atoll(argv[++i]));
        } else if (!strcmp(argv[i], "--per-round") && i + 1 < argc) {
            cfg.perRound = size_t(atoll(argv[++i]));
        } else if (!strcmp(argv[i], "--threads") && i + 1 < argc) {
            cfg.threads = unsigned(atoi(argv[++i]));
        } else if (!strcmp(argv[i], "--smoke")) {
            smoke = true;
            cfg.rounds = 6;
            cfg.perRound = 64;
        } else {
            fprintf(stderr,
                    "usage: %s [--seed N] [--rounds N] "
                    "[--per-round N] [--threads N] [--smoke]\n",
                    argv[0]);
            return 2;
        }
    }

    auto t0 = std::chrono::steady_clock::now();
    FuzzResult res = runFuzz(cfg);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    double rate = secs > 0 ? double(res.executed) / secs : 0;

    printf("fuzz throughput: %zu execs in %.3f s = %.0f execs/sec\n",
           res.executed, secs, rate);
    printf("  %s\n", res.summary().c_str());

    if (!res.clean()) {
        for (const Finding &f : res.findings)
            printf("  DIVERGENCE: %s\n", f.detail.c_str());
        return 1;
    }
    if (smoke && rate < 1000.0) {
        if (ZARF_SANITIZED) {
            printf("  below the 1000 execs/sec floor "
                   "(informational: sanitized build)\n");
        } else {
            printf("  FAIL: below the 1000 execs/sec floor\n");
            return 1;
        }
    }
    return 0;
}
