/**
 * @file
 * Differential-oracle throughput of the conformance fuzzer
 * (docs/TESTING.md). One oracle execution runs a candidate through
 * all evaluators plus the snapshot replay, so this is the number
 * that sizes nightly campaigns: candidates per wall-clock second
 * across the verify worker pool.
 *
 * The campaign is run once per oracle rotation rung so the cost of
 * the dispatch-tier comparisons is visible as its own row:
 *
 *   cycle-tiers      word-walk + µop bit-comparison only
 *   +threaded        ... plus the direct-threaded bit-comparison
 *   +threaded+fast   ... plus the fast-functional outcome check
 *                    (the default rotation nightly fuzz runs)
 *
 * Emits BENCH_fuzz_throughput.json at the repo root.
 *
 *   bench_fuzz_throughput [--seed N] [--rounds N] [--per-round N]
 *                         [--threads N] [--smoke]
 *
 * --smoke runs a small fixed-seed campaign and exits nonzero when
 * the full-rotation throughput falls below the 1,000 execs/sec
 * acceptance floor (or when the campaign finds a divergence, which
 * would be a real bug). Under asan/ubsan the floor is informational
 * only — the sanitize preset still runs the campaign (every
 * candidate executes under the sanitizers) but an order-of-magnitude
 * slowdown is expected.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_paths.hh"
#include "fuzz/fuzzer.hh"

using namespace zarf;
using namespace zarf::fuzz;

#if defined(__SANITIZE_ADDRESS__)
#define ZARF_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ZARF_SANITIZED 1
#endif
#endif
#ifndef ZARF_SANITIZED
#define ZARF_SANITIZED 0
#endif

int
main(int argc, char **argv)
{
    FuzzConfig cfg;
    cfg.rounds = 16;
    cfg.perRound = 128;
    cfg.maxDivergences = 1;
    bool smoke = false;

    for (int i = 1; i < argc; ++i) {
        if (!strcmp(argv[i], "--seed") && i + 1 < argc) {
            cfg.seed = uint64_t(atoll(argv[++i]));
        } else if (!strcmp(argv[i], "--rounds") && i + 1 < argc) {
            cfg.rounds = size_t(atoll(argv[++i]));
        } else if (!strcmp(argv[i], "--per-round") && i + 1 < argc) {
            cfg.perRound = size_t(atoll(argv[++i]));
        } else if (!strcmp(argv[i], "--threads") && i + 1 < argc) {
            cfg.threads = unsigned(atoi(argv[++i]));
        } else if (!strcmp(argv[i], "--smoke")) {
            smoke = true;
            cfg.rounds = 6;
            cfg.perRound = 64;
        } else {
            fprintf(stderr,
                    "usage: %s [--seed N] [--rounds N] "
                    "[--per-round N] [--threads N] [--smoke]\n",
                    argv[0]);
            return 2;
        }
    }

    struct Rung
    {
        const char *name;
        bool threaded;
        bool fast;
        size_t executed = 0;
        double secs = 0;
        double rate = 0;
        bool clean = true;
        std::string summary;
        std::vector<Finding> findings;
    };
    std::vector<Rung> rungs = {
        { "cycle-tiers", false, false },
        { "+threaded", true, false },
        { "+threaded+fast", true, true },
    };

    printf("=== fuzz throughput: oracle rotation rungs%s ===\n\n",
           smoke ? " (smoke)" : "");
    for (Rung &r : rungs) {
        FuzzConfig rc = cfg;
        rc.oracle.compareThreaded = r.threaded;
        rc.oracle.compareFast = r.fast;
        auto t0 = std::chrono::steady_clock::now();
        FuzzResult res = runFuzz(rc);
        r.secs = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
        r.executed = res.executed;
        r.rate = r.secs > 0 ? double(res.executed) / r.secs : 0;
        r.clean = res.clean();
        r.summary = res.summary();
        r.findings = std::move(res.findings);
        printf("  %-16s %6zu execs in %7.3f s = %7.0f execs/sec\n",
               r.name, r.executed, r.secs, r.rate);
        printf("  %-16s %s\n\n", "", r.summary.c_str());
    }

    const Rung &base = rungs[0];
    const Rung &full = rungs.back();
    if (base.rate > 0 && full.rate > 0)
        printf("  full rotation runs at %.0f%% of the cycle-tier "
               "rotation's throughput\n\n",
               100.0 * full.rate / base.rate);

    std::string outPath =
        benchio::repoRootedPath("BENCH_fuzz_throughput.json");
    FILE *f = fopen(outPath.c_str(), "w");
    if (f) {
        fprintf(f, "{\n  \"smoke\": %s,\n  \"rows\": [\n",
                smoke ? "true" : "false");
        for (size_t i = 0; i < rungs.size(); ++i) {
            const Rung &r = rungs[i];
            fprintf(f,
                    "    {\"rotation\": \"%s\", "
                    "\"compare_threaded\": %s, "
                    "\"compare_fast\": %s, "
                    "\"execs\": %zu, \"wall_sec\": %.6f, "
                    "\"execs_per_sec\": %.1f, \"clean\": %s}%s\n",
                    r.name, r.threaded ? "true" : "false",
                    r.fast ? "true" : "false", r.executed, r.secs,
                    r.rate, r.clean ? "true" : "false",
                    i + 1 < rungs.size() ? "," : "");
        }
        fprintf(f, "  ]\n}\n");
        fclose(f);
        printf("wrote %s\n", outPath.c_str());
    } else {
        perror(outPath.c_str());
    }

    bool bad = false;
    for (const Rung &r : rungs) {
        if (r.clean)
            continue;
        bad = true;
        for (const Finding &fi : r.findings)
            printf("  DIVERGENCE [%s]: %s\n", r.name,
                   fi.detail.c_str());
    }
    if (bad)
        return 1;
    if (smoke && full.rate < 1000.0) {
        if (ZARF_SANITIZED) {
            printf("  below the 1000 execs/sec floor "
                   "(informational: sanitized build)\n");
        } else {
            printf("  FAIL: below the 1000 execs/sec floor\n");
            return 1;
        }
    }
    return 0;
}
