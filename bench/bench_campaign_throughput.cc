/**
 * @file
 * Campaign-scale throughput of the two-layer co-simulation
 * (docs/PERF.md, "Campaign-scale execution"): how many scenarios
 * per second a fault-injection campaign and a refinement sweep
 * sustain under the three load strategies —
 *
 *   cold    — parse + predecode the image per scenario, rebuild
 *             golden runs per campaign (the original path);
 *   shared  — one immutable LoadedImage per campaign, golden shock
 *             logs cached process-wide by content;
 *   fork    — shared, plus scenarios resume from the warm system
 *             snapshot the golden run captured at the fault
 *             window's start, skipping the fault-free prefix.
 *
 * The strategies must be indistinguishable in output: the bench
 * byte-compares every campaign's JSON against the cold reference
 * (and across thread counts) and exits nonzero on any mismatch.
 *
 *   bench_campaign_throughput [--smoke] [--threads N] [--seed N]
 *
 * Emits BENCH_campaign_throughput.json at the repository root.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_paths.hh"
#include "fault/campaign.hh"
#include "icd/zarf_icd.hh"
#include "verify/parallel.hh"

using namespace zarf;

namespace
{

double
now()
{
    using clk = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clk::now().time_since_epoch())
        .count();
}

const char *
strategyName(fault::LoadStrategy s)
{
    switch (s) {
      case fault::LoadStrategy::Cold:
        return "cold";
      case fault::LoadStrategy::Shared:
        return "shared";
      case fault::LoadStrategy::Fork:
        return "fork";
    }
    return "?";
}

struct Row
{
    std::string section;
    std::string strategy;
    unsigned threads = 0;
    size_t scenarios = 0;
    double wallSec = 0;

    double
    perSec() const
    {
        return wallSec > 0 ? double(scenarios) / wallSec : 0;
    }
};

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    unsigned threads = 0;
    uint64_t seed = 1;
    for (int i = 1; i < argc; ++i) {
        if (!strcmp(argv[i], "--smoke")) {
            smoke = true;
        } else if (!strcmp(argv[i], "--threads") && i + 1 < argc) {
            threads = unsigned(atoi(argv[++i]));
        } else if (!strcmp(argv[i], "--seed") && i + 1 < argc) {
            seed = uint64_t(atoll(argv[++i]));
        } else {
            fprintf(stderr,
                    "usage: %s [--smoke] [--threads N] [--seed N]\n",
                    argv[0]);
            return 2;
        }
    }
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }

    // Shortened horizons keep the sweep affordable; the fault
    // windows still open inside them, so the fork strategy has a
    // real fault-free prefix to skip.
    fault::CampaignConfig base;
    base.scenarios = smoke ? 11 : 44;
    base.threads = threads;
    base.seedBase = seed;
    base.sinusSeconds = smoke ? 0.35 : 0.4;
    base.vtSeconds = 1.7;

    printf("=== campaign throughput: cold vs shared vs "
           "snapshot-fork%s ===\n\n",
           smoke ? " (smoke)" : "");
    printf("fault campaign: %zu scenarios, %u threads, seed %llu\n\n",
           base.scenarios, threads, (unsigned long long)seed);
    printf("  %-10s %8s %10s %14s\n", "strategy", "threads",
           "host s", "scenarios/s");

    std::vector<Row> rows;
    std::string coldJson;
    bool mismatch = false;
    double coldWall = 0, forkWall = 0;

    for (fault::LoadStrategy s : { fault::LoadStrategy::Cold,
                                   fault::LoadStrategy::Shared,
                                   fault::LoadStrategy::Fork }) {
        fault::CampaignConfig cfg = base;
        cfg.strategy = s;
        double t0 = now();
        fault::CampaignReport report = fault::runCampaign(cfg);
        double t1 = now();

        Row row;
        row.section = "fault-campaign";
        row.strategy = strategyName(s);
        row.threads = threads;
        row.scenarios = report.results.size();
        row.wallSec = t1 - t0;
        printf("  %-10s %8u %10.3f %14.2f\n", row.strategy.c_str(),
               row.threads, row.wallSec, row.perSec());
        rows.push_back(row);

        std::string json = report.toJson();
        if (s == fault::LoadStrategy::Cold) {
            coldJson = std::move(json);
            coldWall = row.wallSec;
        } else if (json != coldJson) {
            fprintf(stderr,
                    "FAIL: %s strategy JSON differs from cold\n",
                    row.strategy.c_str());
            mismatch = true;
        }
        if (s == fault::LoadStrategy::Fork)
            forkWall = row.wallSec;
    }

    // Thread-count determinism: a single-threaded fork campaign
    // must render byte-identically to the multi-threaded one.
    {
        fault::CampaignConfig cfg = base;
        cfg.strategy = fault::LoadStrategy::Fork;
        cfg.threads = 1;
        double t0 = now();
        fault::CampaignReport report = fault::runCampaign(cfg);
        double t1 = now();
        Row row;
        row.section = "fault-campaign";
        row.strategy = "fork";
        row.threads = 1;
        row.scenarios = report.results.size();
        row.wallSec = t1 - t0;
        printf("  %-10s %8u %10.3f %14.2f\n", row.strategy.c_str(),
               row.threads, row.wallSec, row.perSec());
        rows.push_back(row);
        if (report.toJson() != coldJson) {
            fprintf(stderr, "FAIL: fork @1 thread JSON differs "
                            "from cold\n");
            mismatch = true;
        }
    }

    double speedup = forkWall > 0 ? coldWall / forkWall : 0;
    printf("\n  snapshot-fork speedup over cold: %.2fx "
           "(target >= 1.5x)\n\n",
           speedup);

    // Refinement sweep: repeated fan-outs over the process-wide
    // worker pool (verify::detail::poolRun) — the case the pool
    // exists for, since each invocation used to spawn and join its
    // own jthreads.
    Program icdProgram = icd::buildIcdStepProgram();
    const size_t sweepReps = smoke ? 4 : 10;
    const size_t shards = 32;
    const size_t samples = smoke ? 200 : 1000;
    printf("refinement sweep: %zu invocations x %zu shards x %zu "
           "samples\n\n",
           sweepReps, shards, samples);
    printf("  %-10s %8s %10s %14s\n", "threads", "reps", "host s",
           "shards/s");

    std::string sweepSummary1, sweepSummaryN;
    for (unsigned t : { 1u, threads }) {
        if (t == threads && threads == 1 && !sweepSummary1.empty()) {
            sweepSummaryN = sweepSummary1;
            break;
        }
        verify::ParallelConfig pcfg;
        pcfg.threads = t;
        pcfg.seedBase = seed;
        pcfg.shards = shards;
        double t0 = now();
        std::string summary;
        for (size_t rep = 0; rep < sweepReps; ++rep) {
            verify::ParallelReport r = verify::refinementCampaign(
                icdProgram, samples, pcfg);
            summary = r.summary();
        }
        double t1 = now();
        Row row;
        row.section = "refinement-sweep";
        row.strategy = "pool";
        row.threads = t;
        row.scenarios = shards * sweepReps;
        row.wallSec = t1 - t0;
        printf("  %-10u %8zu %10.3f %14.2f\n", t, sweepReps,
               row.wallSec, row.perSec());
        rows.push_back(row);
        (t == 1 ? sweepSummary1 : sweepSummaryN) = summary;
    }
    if (sweepSummary1 != sweepSummaryN) {
        fprintf(stderr, "FAIL: refinement sweep summary differs "
                        "across thread counts\n");
        mismatch = true;
    }
    printf("\n");

    std::string path =
        benchio::repoRootedPath("BENCH_campaign_throughput.json");
    FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::perror(path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"smoke\": %s,\n  \"rows\": [\n",
                 smoke ? "true" : "false");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(f,
                     "    {\"section\": \"%s\", \"strategy\": "
                     "\"%s\", \"threads\": %u, \"scenarios\": %zu, "
                     "\"wall_sec\": %.6f, \"per_sec\": %.2f}%s\n",
                     r.section.c_str(), r.strategy.c_str(),
                     r.threads, r.scenarios, r.wallSec, r.perSec(),
                     i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f,
                 "  ],\n  \"fork_speedup_over_cold\": %.3f,\n"
                 "  \"json_identical\": %s\n}\n",
                 speedup, mismatch ? "false" : "true");
    std::fclose(f);
    printf("wrote %s\n", path.c_str());

    return mismatch ? 1 : 0;
}
