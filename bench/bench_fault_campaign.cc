/**
 * @file
 * Fault-injection campaign over the two-layer ICD system
 * (docs/RESILIENCE.md): thousands of seeded single-fault scenarios —
 * SEUs in the heap, operand path, and imperative-core memory, ECG
 * front-end failures, FIFO channel faults, and λ-pipeline wedges —
 * each classified against a fault-free golden run as masked,
 * detected-and-recovered, missed-deadline, or silent corruption.
 *
 * The campaign is deterministic: the same --scenarios and --seed
 * produce a bit-identical JSON report on any --threads value. The
 * headline gate is protectedSilentCorruptions == 0: with the heap
 * ECC and operand parity protections on, every injected fault is
 * either masked or detected, never silently corrupting therapy.
 *
 *   bench_fault_campaign [--scenarios N] [--threads N] [--seed N]
 *                        [--json FILE] [--metrics-json FILE]
 *                        [--smoke]
 *                        [--journal FILE] [--resume FILE]
 *                        [--quarantine DIR] [--retries N]
 *                        [--max-host-ms N] [--max-lambda-cycles N]
 *                        [--max-heap-bytes N]
 *
 * --smoke runs one full 44-scenario cycle of the scenario space
 * (11 fault kinds x 2 rhythm flavors x 2 protection models) — the
 * CI gate. The process exits nonzero if any protected-memory
 * scenario silently corrupts output.
 *
 * Resilience (docs/RESILIENCE.md, "Harness resilience"): --journal
 * appends each completed scenario verdict to a crash-safe log;
 * --resume replays an earlier journal so a killed campaign restarts
 * from where it stopped — the final JSON is byte-identical to an
 * uninterrupted run at any --threads. The --max-* flags arm a
 * per-scenario budget; scenarios that exhaust it after --retries
 * attempts are quarantined into --quarantine and classified
 * budget-exceeded while the campaign completes.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fault/campaign.hh"

using namespace zarf;

int
main(int argc, char **argv)
{
    fault::CampaignConfig cfg;
    const char *jsonPath = nullptr;
    const char *metricsPath = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!strcmp(argv[i], "--scenarios") && i + 1 < argc) {
            cfg.scenarios = size_t(atoll(argv[++i]));
        } else if (!strcmp(argv[i], "--threads") && i + 1 < argc) {
            cfg.threads = unsigned(atoi(argv[++i]));
        } else if (!strcmp(argv[i], "--seed") && i + 1 < argc) {
            cfg.seedBase = uint64_t(atoll(argv[++i]));
        } else if (!strcmp(argv[i], "--json") && i + 1 < argc) {
            jsonPath = argv[++i];
        } else if (!strcmp(argv[i], "--metrics-json") &&
                   i + 1 < argc) {
            metricsPath = argv[++i];
        } else if (!strcmp(argv[i], "--smoke")) {
            // One full cycle of the scenario space.
            cfg.scenarios = 44;
        } else if (!strcmp(argv[i], "--journal") && i + 1 < argc) {
            cfg.journalPath = argv[++i];
        } else if (!strcmp(argv[i], "--resume") && i + 1 < argc) {
            cfg.resumePath = argv[++i];
        } else if (!strcmp(argv[i], "--quarantine") && i + 1 < argc) {
            cfg.quarantineDir = argv[++i];
        } else if (!strcmp(argv[i], "--retries") && i + 1 < argc) {
            cfg.retry.maxAttempts = unsigned(atoi(argv[++i])) + 1;
        } else if (!strcmp(argv[i], "--max-host-ms") &&
                   i + 1 < argc) {
            cfg.scenarioBudget.maxHostMillis =
                uint64_t(atoll(argv[++i]));
        } else if (!strcmp(argv[i], "--max-lambda-cycles") &&
                   i + 1 < argc) {
            cfg.scenarioBudget.maxLambdaCycles =
                uint64_t(atoll(argv[++i]));
        } else if (!strcmp(argv[i], "--max-heap-bytes") &&
                   i + 1 < argc) {
            cfg.scenarioBudget.maxHeapBytes =
                uint64_t(atoll(argv[++i]));
        } else {
            fprintf(stderr,
                    "usage: %s [--scenarios N] [--threads N] "
                    "[--seed N] [--json FILE] "
                    "[--metrics-json FILE] [--smoke] "
                    "[--journal FILE] [--resume FILE] "
                    "[--quarantine DIR] [--retries N] "
                    "[--max-host-ms N] [--max-lambda-cycles N] "
                    "[--max-heap-bytes N]\n",
                    argv[0]);
            return 2;
        }
    }

    printf("fault campaign: %zu scenarios, seed base %llu\n",
           cfg.scenarios, (unsigned long long)cfg.seedBase);
    fault::CampaignReport report = fault::runCampaign(cfg);

    for (size_t o = 0; o < fault::kNumOutcomes; ++o) {
        auto oc = fault::Outcome(o);
        printf("  %-20s %zu\n", fault::outcomeName(oc),
               report.count(oc));
    }
    if (report.resumedFromJournal)
        printf("  resumed from journal: %zu scenarios\n",
               report.resumedFromJournal);
    size_t silentProtected = report.protectedSilentCorruptions();
    printf("  protected silent corruptions: %zu (gate: 0)\n",
           silentProtected);

    if (jsonPath) {
        FILE *f = fopen(jsonPath, "w");
        if (!f) {
            fprintf(stderr, "cannot write %s\n", jsonPath);
            return 2;
        }
        std::string json = report.toJson();
        fwrite(json.data(), 1, json.size(), f);
        fclose(f);
        printf("  report: %s\n", jsonPath);
    }

    if (metricsPath) {
        FILE *f = fopen(metricsPath, "w");
        if (!f) {
            fprintf(stderr, "cannot write %s\n", metricsPath);
            return 2;
        }
        std::string json = report.metricsJson();
        fwrite(json.data(), 1, json.size(), f);
        fclose(f);
        printf("  metrics: %s\n", metricsPath);
    }

    return silentProtected == 0 ? 0 : 1;
}
