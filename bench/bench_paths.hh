/**
 * @file
 * Where bench binaries write their machine-readable results.
 *
 * CI runs benches from the build tree but archives BENCH_*.json
 * artifacts from the repository root, so the JSON lands next to
 * ROADMAP.md wherever the binary was launched from: walk up from
 * the working directory to the first ancestor holding ROADMAP.md,
 * falling back to the working directory itself.
 */

#ifndef ZARF_BENCH_PATHS_HH
#define ZARF_BENCH_PATHS_HH

#include <filesystem>
#include <string>

namespace zarf::benchio
{

inline std::string
repoRootedPath(const std::string &filename)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path dir = fs::current_path(ec);
    if (ec)
        return filename;
    for (fs::path d = dir;; d = d.parent_path()) {
        if (fs::exists(d / "ROADMAP.md", ec))
            return (d / filename).string();
        if (!d.has_parent_path() || d == d.parent_path())
            break;
    }
    return filename;
}

} // namespace zarf::benchio

#endif // ZARF_BENCH_PATHS_HH
