/**
 * @file
 * Canary for the observability layer's disabled-path cost
 * (docs/OBSERVABILITY.md): the trace/tally hooks compiled into the
 * λ-machine hot loop must be ~free when no recorder wants the
 * events. Three configurations drive the same back-to-back ICD
 * workload:
 *
 *  - off:    no recorder attached, tally off (the production
 *            default — one predicted-false branch per hook);
 *  - masked: a recorder attached whose category mask excludes every
 *            machine category, so the cached per-category flags are
 *            false (same cost shape as `off`);
 *  - full:   all categories recorded plus the per-FSM-state tally
 *            (the upper bound anyone pays for full visibility).
 *
 * Samples interleave the configurations and keep the per-config
 * minimum, so coarse host noise cancels. The process exits nonzero
 * if the masked path costs more than kMaxMaskedOverhead over `off` —
 * that would mean a hook escaped the cached-flag discipline.
 *
 *   bench_trace_overhead [--smoke]
 */

#include <cstdio>
#include <cstring>

#include <algorithm>
#include <chrono>

#include "ecg/synth.hh"
#include "icd/zarf_icd.hh"
#include "machine/machine.hh"
#include "obs/trace.hh"
#include "system/ports.hh"

using namespace zarf;

namespace
{

/** Disabled-path overhead gate. Generous against host noise; a hook
 *  that actually formats or stores events blows way past it. */
constexpr double kMaxMaskedOverhead = 0.10;

class BusyRig : public IoBus
{
  public:
    explicit BusyRig(ecg::Heart &h) : heart(h) {}

    SWord
    getInt(SWord port) override
    {
        if (port == sys::kPortTimer)
            return 1;
        if (port == sys::kPortEcgIn)
            return heart.nextSample();
        return 0;
    }

    void putInt(SWord, SWord) override {}

    ecg::Heart &heart;
};

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/** One timed ICD run under `cfg`; returns host seconds. */
double
runOnce(const Image &img, Cycles simCycles, MachineConfig cfg)
{
    ecg::ScriptedHeart heart({ { 20.0, 75.0 }, { 40.0, 190.0 } },
                             42);
    BusyRig rig(heart);
    Machine m(img, rig, cfg);
    double t0 = now();
    while (m.cycles() < simCycles &&
           m.advance(500'000) == MachineStatus::Running) {}
    return now() - t0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }
    const Cycles simCycles = smoke ? 600'000 : 8'000'000;
    const int reps = smoke ? 4 : 7;

    const Image img = icd::buildKernelImage();

    // The masked recorder wants only System events — none of which
    // the bare machine emits — so every cached machine flag is off.
    obs::TraceConfig maskedCfg;
    maskedCfg.mask = unsigned(obs::Cat::System);
    obs::Recorder masked(maskedCfg);
    obs::Recorder full{ obs::TraceConfig{} };

    MachineConfig off;
    MachineConfig withMasked;
    withMasked.trace = &masked;
    MachineConfig withFull;
    withFull.trace = &full;
    withFull.fsmTally = true;

    struct Config
    {
        const char *name;
        MachineConfig cfg;
        double best = 1e30;
    };
    Config configs[] = {
        { "off", off, 1e30 },
        { "masked", withMasked, 1e30 },
        { "full", withFull, 1e30 },
    };

    // Warm-up, then interleaved repetitions keeping the minimum.
    for (Config &c : configs)
        runOnce(img, simCycles / 4, c.cfg);
    for (int r = 0; r < reps; ++r) {
        for (Config &c : configs) {
            full.clear();
            double t = runOnce(img, simCycles, c.cfg);
            c.best = std::min(c.best, t);
        }
    }

    std::printf("=== trace hook overhead (%llu sim cycles, best of "
                "%d)%s ===\n\n",
                (unsigned long long)simCycles, reps,
                smoke ? " (smoke)" : "");
    double base = configs[0].best;
    for (const Config &c : configs) {
        double overhead = c.best / base - 1.0;
        std::printf("  %-8s %8.4f s  (%+.2f%% vs off)\n", c.name,
                    c.best, 100.0 * overhead);
    }
    std::printf("\n  full-config events recorded: %llu "
                "(+%llu dropped)\n",
                (unsigned long long)full.emitted(),
                (unsigned long long)full.dropped());

    double maskedOverhead = configs[1].best / base - 1.0;
    if (maskedOverhead > kMaxMaskedOverhead) {
        std::fprintf(stderr,
                     "FAIL: masked-recorder overhead %.2f%% exceeds "
                     "%.0f%% — a hook bypasses the cached flags\n",
                     100.0 * maskedOverhead,
                     100.0 * kMaxMaskedOverhead);
        return 1;
    }
    std::printf("  masked overhead within the %.0f%% gate\n",
                100.0 * kMaxMaskedOverhead);
    return 0;
}
