/**
 * @file
 * Figure 6 — extraction of verified application components: the
 * low-level implementation (the analog of the paper's lower-level
 * Coq code) maps line for line onto Zarf assembly, which encodes
 * directly into the binary.
 *
 * Shows the low-pass-filter stage of the ICD through all three
 * forms, then reports extraction statistics for the whole program.
 */

#include <cstdio>

#include "icd/zarf_icd.hh"
#include "isa/binary.hh"
#include "lowlevel/extract.hh"
#include "zasm/zasm.hh"

using namespace zarf;

int
main()
{
    std::printf("=== Figure 6: extraction pipeline ===\n");

    ll::LProgram lp = icd::buildIcdLowLevel();

    // (b) the low-level form of one stage.
    std::printf("\n--- (b) low-level implementation (lpStep) ---\n");
    for (const ll::LFunc &f : lp.funcs) {
        if (f.name == "lpStep") {
            std::printf("Definition %s", f.name.c_str());
            for (const auto &p : f.params)
                std::printf(" %s", p.c_str());
            std::printf(" :=\n  %s.\n",
                        ll::printL(f.body, 1).c_str());
        }
    }

    // (c) the extracted assembly for the same stage.
    ll::ExtractResult ex = ll::extract(lp);
    if (!ex.ok) {
        std::printf("extraction failed: %s\n", ex.error.c_str());
        return 1;
    }
    std::printf("\n--- (c) extracted Zarf assembly (lpStep) ---\n");
    std::string all = printAssembly(ex.builder);
    size_t at = all.find("fun lpStep");
    size_t end = all.find("\nfun ", at + 1);
    std::printf("%s\n",
                all.substr(at, end == std::string::npos
                                   ? std::string::npos
                                   : end - at)
                    .c_str());

    // Whole-program statistics.
    Program prog = ex.builder.build();
    Image img = encodeProgram(prog);
    size_t funcs = 0, conses = 0, nodes = 0;
    for (const Decl &d : prog.decls) {
        if (d.isCons) {
            ++conses;
        } else {
            ++funcs;
            nodes += exprNodeCount(*d.body);
        }
    }
    std::printf("--- whole-program extraction ---\n");
    std::printf("  %zu constructors, %zu functions, %zu "
                "instructions, %zu binary words (%zu bytes)\n",
                conses, funcs, nodes, img.size(), img.size() * 4);
    std::printf("  round trip: %s\n",
                encodeProgram(decodeProgramOrDie(img)) == img
                    ? "binary -> AST -> binary byte-identical"
                    : "MISMATCH");
    std::printf("\npaper: \"The translation simply replaces Coq "
                "keywords with lambda-execution layer assembly "
                "keywords\" — here, the extractor is the ~300-line "
                "ANF conversion in src/lowlevel/extract.cc, the only "
                "trusted translation step.\n");
    return 0;
}
