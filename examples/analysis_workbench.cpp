/**
 * @file
 * The three assembly-level analyses of Sec. 5 applied to the ICD
 * kernel in one sitting: correctness by refinement, worst-case
 * timing, and non-interference — the "formal and compositional
 * binary analysis" of the title, exercised through the public API.
 */

#include <cstdio>

#include "ecg/synth.hh"
#include "icd/zarf_icd.hh"
#include "lowlevel/extract.hh"
#include "verify/icd_types.hh"
#include "verify/refine.hh"
#include "verify/wcet.hh"

using namespace zarf;

int
main()
{
    std::printf("=== Analysis workbench: the ICD kernel under all "
                "three analyses ===\n\n");

    Program kernel = ll::extractOrDie(icd::buildKernelLowLevel());
    std::printf("subject: %zu declarations, extracted from the "
                "low-level IR\n\n", kernel.decls.size());

    // ---- 1. Correctness (Sec. 5.1) ----
    std::printf("[1/3] refinement: spec vs extracted assembly, "
                "30 s with a therapy episode...\n");
    ecg::ScriptedHeart heart({ { 10.0, 75.0 }, { 20.0, 190.0 } }, 5);
    std::vector<SWord> inputs;
    for (int i = 0; i < 6000; ++i)
        inputs.push_back(heart.nextSample());
    verify::RefinementReport rr =
        verify::checkSpecVsZarf(icd::buildIcdStepProgram(), inputs);
    std::printf("      %s (%zu samples)\n\n",
                rr.ok ? "outputs bit-identical" : rr.detail.c_str(),
                rr.samplesChecked);

    // ---- 2. Timing (Sec. 5.2) ----
    std::printf("[2/3] worst-case timing of one kernel "
                "iteration...\n");
    verify::WcetConfig wcfg;
    wcfg.boundaryFunctions = { "kernelLoop", "waitTick" };
    verify::WcetReport wr =
        verify::analyzeWcet(kernel, "kernelLoop", wcfg);
    if (wr.ok) {
        std::printf("%s", wr.summary().c_str());
        std::printf("      deadline: %.1f us of 5000 us used "
                    "(%.0fx margin)\n\n",
                    wr.totalBound() * 20.0 / 1000.0,
                    5000.0 / (wr.totalBound() * 20.0 / 1000.0));
    } else {
        std::printf("      failed: %s\n\n", wr.error.c_str());
    }

    // ---- 3. Non-interference (Sec. 5.3) ----
    std::printf("[3/3] integrity typing of the kernel assembly...\n");
    verify::TypeEnv env = verify::icdKernelTypeEnv(kernel);
    verify::ITypeReport ir = verify::checkIntegrity(kernel, env);
    std::printf("      %s\n", ir.ok()
                                  ? "well-typed: untrusted values "
                                    "cannot reach the pacing output"
                                  : ir.summary().c_str());

    std::printf("\nall three analyses operate on the same "
                "machine-level program a binary decodes to — no "
                "compiler or runtime in the TCB.\n");
    return rr.ok && wr.ok && ir.ok() ? 0 : 1;
}
