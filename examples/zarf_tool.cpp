/**
 * @file
 * zarf_tool — a command-line assembler / disassembler / runner for
 * the Zarf functional ISA.
 *
 *   zarf_tool asm <file.zasm> <out.zbin>    assemble to a binary
 *   zarf_tool dis <file.zbin>               disassemble a binary
 *   zarf_tool run <file.zasm|file.zbin>     run main (lazy machine)
 *   zarf_tool cyc <file.zasm|file.zbin>     run on the cycle-level
 *                                           machine, print stats
 *   zarf_tool check <file.zasm|file.zbin>   validate + static info
 *
 * getint reads decimal integers from stdin; putint prints
 * "port value" lines to stdout.
 */

#include <cstdio>
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "isa/binary.hh"
#include "isa/encoding.hh"
#include "isa/validate.hh"
#include "machine/machine.hh"
#include "sem/smallstep.hh"
#include "support/logging.hh"
#include "zasm/zasm.hh"

using namespace zarf;

namespace
{

/** stdin/stdout bus for interactive runs. */
class StdioBus : public IoBus
{
  public:
    SWord
    getInt(SWord port) override
    {
        std::fprintf(stderr, "getint port %d> ", port);
        long v = 0;
        if (!(std::cin >> v))
            return 0;
        return SWord(v);
    }

    void
    putInt(SWord port, SWord value) override
    {
        std::printf("%d %d\n", port, value);
    }
};

bool
readFile(const char *path, std::string &out)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        return false;
    std::ostringstream ss;
    ss << f.rdbuf();
    out = ss.str();
    return true;
}

bool
looksBinary(const std::string &data)
{
    if (data.size() < 4)
        return false;
    Word w;
    std::memcpy(&w, data.data(), 4);
    return w == kMagic;
}

Image
bytesToImage(const std::string &data)
{
    Image img(data.size() / 4);
    std::memcpy(img.data(), data.data(), img.size() * 4);
    return img;
}

Program
loadProgram(const char *path)
{
    std::string data;
    if (!readFile(path, data))
        fatal("cannot read %s", path);
    if (looksBinary(data))
        return decodeProgramOrDie(bytesToImage(data));
    return assembleOrDie(data);
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: zarf_tool asm <in.zasm> <out.zbin>\n"
                 "       zarf_tool dis <in.zbin|in.zasm>\n"
                 "       zarf_tool run <in.zasm|in.zbin>\n"
                 "       zarf_tool cyc <in.zasm|in.zbin>\n"
                 "       zarf_tool check <in.zasm|in.zbin>\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const char *cmd = argv[1];

    if (std::strcmp(cmd, "asm") == 0) {
        if (argc != 4)
            return usage();
        std::string text;
        if (!readFile(argv[2], text))
            fatal("cannot read %s", argv[2]);
        Image img = encodeProgram(assembleOrDie(text));
        std::ofstream out(argv[3], std::ios::binary);
        out.write(reinterpret_cast<const char *>(img.data()),
                  std::streamsize(img.size() * 4));
        std::fprintf(stderr, "wrote %zu words (%zu bytes)\n",
                     img.size(), img.size() * 4);
        return 0;
    }

    if (std::strcmp(cmd, "check") == 0) {
        Program p = loadProgram(argv[2]);
        ValidationReport r = validateProgram(p);
        size_t funcs = 0, conses = 0, instrs = 0, maxLocals = 0;
        for (const Decl &d : p.decls) {
            if (d.isCons) {
                ++conses;
                continue;
            }
            ++funcs;
            instrs += exprNodeCount(*d.body);
            maxLocals = std::max(maxLocals, size_t(d.numLocals));
        }
        Image img = encodeProgram(p);
        std::printf("declarations: %zu (%zu functions, %zu "
                    "constructors)\n",
                    p.decls.size(), funcs, conses);
        std::printf("instructions: %zu; binary: %zu words (%zu "
                    "bytes); max locals: %zu\n",
                    instrs, img.size(), img.size() * 4, maxLocals);
        if (r.ok()) {
            std::printf("validation: ok\n");
            return 0;
        }
        std::printf("validation FAILED:\n%s", r.summary().c_str());
        return 1;
    }

    if (std::strcmp(cmd, "dis") == 0) {
        std::printf("%s", disassemble(loadProgram(argv[2])).c_str());
        return 0;
    }

    if (std::strcmp(cmd, "run") == 0) {
        Program p = loadProgram(argv[2]);
        StdioBus bus;
        SmallStep engine(p, bus);
        RunResult r = engine.runMain();
        if (!r.ok()) {
            std::fprintf(stderr, "error: %s\n", r.where.c_str());
            return 1;
        }
        std::printf("=> %s\n", r.value->toString().c_str());
        return 0;
    }

    if (std::strcmp(cmd, "cyc") == 0) {
        Program p = loadProgram(argv[2]);
        StdioBus bus;
        Machine m(encodeProgram(p), bus);
        Machine::Outcome o = m.run();
        if (o.status != MachineStatus::Done) {
            std::fprintf(stderr, "machine status %d: %s\n",
                         int(o.status), o.diagnostic.c_str());
            return 1;
        }
        std::printf("=> %s\n", o.value->toString().c_str());
        std::printf("cycles: %llu\n%s",
                    (unsigned long long)m.cycles(),
                    m.stats().report().c_str());
        return 0;
    }

    return usage();
}
