/**
 * @file
 * Quickstart: build a Zarf program three ways (assembly text, the
 * builder API, and the low-level IR with extraction), encode it to
 * a binary, and run it on all three execution engines.
 */

#include <cstdio>

#include "isa/binary.hh"
#include "isa/builder.hh"
#include "lowlevel/extract.hh"
#include "machine/machine.hh"
#include "sem/bigstep.hh"
#include "sem/smallstep.hh"
#include "zasm/zasm.hh"

using namespace zarf;

int
main()
{
    std::printf("=== Zarf quickstart ===\n\n");

    // ------------------------------------------------------------
    // 1. Assembly text: sum the first 100 integers.
    // ------------------------------------------------------------
    Program sumProg = assembleOrDie(R"(
fun main =
  let s = sumTo 100 0
  result s

fun sumTo n acc =
  case n of
    0 =>
      result acc
    else
      let acc' = add acc n
      let n' = sub n 1
      let r = sumTo n' acc'
      result r
)");

    // ------------------------------------------------------------
    // 2. The builder API: the same program, constructed in C++.
    // ------------------------------------------------------------
    ProgramBuilder pb;
    pb.fn("main", {},
          nLet("s", "sumTo", { nImm(100), nImm(0) },
               nRet(nVar("s"))));
    pb.fn("sumTo", { "n", "acc" },
          nCase(nVar("n"),
                { litBranch(0, nRet(nVar("acc"))) },
                nLet("acc2", "add", { nVar("acc"), nVar("n") },
                     nLet("n2", "sub", { nVar("n"), nImm(1) },
                          nLet("r", "sumTo",
                               { nVar("n2"), nVar("acc2") },
                               nRet(nVar("r")))))));
    Program built = pb.build();

    // ------------------------------------------------------------
    // 3. The low-level IR with nested expressions + extraction.
    // ------------------------------------------------------------
    ll::LProgram lp;
    lp.fn("main", {}, ll::call("sumTo", { ll::lit(100), ll::lit(0) }));
    lp.fn("sumTo", { "n", "acc" },
          ll::match(ll::v("n"),
                    { ll::onLit(0, ll::v("acc")) },
                    ll::call("sumTo",
                             { ll::v("n") - ll::lit(1),
                               ll::v("acc") + ll::v("n") })));
    Program extracted = ll::extractOrDie(lp);

    // All three encode to a binary image.
    Image img = encodeProgram(sumProg);
    std::printf("assembled %zu declarations into %zu binary words\n",
                sumProg.decls.size(), img.size());
    std::printf("builder and extractor produce %zu / %zu words\n\n",
                encodeProgram(built).size(),
                encodeProgram(extracted).size());

    // ------------------------------------------------------------
    // Run on every engine.
    // ------------------------------------------------------------
    NullBus bus;

    BigStep bs(sumProg, bus);
    EvalResult er = bs.runMain();
    std::printf("big-step (eager oracle):      %s\n",
                er.ok() ? er.value->toString().c_str() : "failed");

    SmallStep ss(sumProg, bus);
    RunResult rr = ss.runMain();
    std::printf("small-step (lazy machine):    %s\n",
                rr.ok() ? rr.value->toString().c_str() : "failed");

    Machine m(img, bus);
    Machine::Outcome o = m.run();
    std::printf("cycle-level machine:          %s in %llu cycles "
                "(CPI %.2f)\n",
                o.value ? o.value->toString().c_str() : "failed",
                (unsigned long long)m.cycles(),
                m.stats().cpiNoGc());

    // Disassembly works straight off the binary.
    std::printf("\ndisassembly of the binary:\n%s",
                disassemble(decodeProgramOrDie(img)).c_str());
    return 0;
}
