/**
 * @file
 * A tour of general-purpose programming on the λ-execution layer
 * using the prelude: the ISA is complete, so ordinary software —
 * here, descriptive statistics over a data series — runs on the
 * same layer as the verified ICD, with the same analyzability.
 */

#include <cstdio>

#include "isa/binary.hh"
#include "machine/machine.hh"
#include "support/logging.hh"
#include "zasm/prelude.hh"
#include "zasm/zasm.hh"

using namespace zarf;

int
main()
{
    std::printf("=== Prelude tour: statistics on the λ-layer ===\n\n");

    // Compute min, max, sum, mean, and the count of outliers
    // (> mean + 10) over a series read from port 0.
    std::string text = R"(
fun main =
  let xs = readN 16
  let n = length xs
  let s = sum xs
  let mean = div s n
  let mx = maximumL xs
  let mxv = fromSome 0 mx
  let lim = add mean 10
  let isOut = gt'
  let f = isOut lim
  let outs = filterL f xs
  let k = length outs
  # report on port 1: sum, mean, max, outlier count
  let w1 = putint 1 s
  case w1 of
    else
      let w2 = putint 1 mean
      case w2 of
        else
          let w3 = putint 1 mxv
          case w3 of
            else
              let w4 = putint 1 k
              result w4

# flipped > so it partially applies as (lim >) x  ==  x > lim
fun gt' lim x =
  let r = gt x lim
  result r

fun readN n =
  case n of
    0 =>
      let e = Nil
      result e
  else
    let x = getint 0
    case x of
      else
        let n' = sub n 1
        let rest = readN n'
        let out = Cons x rest
        result out
)";

    Program p = assembleOrDie(text + preludeText());
    ScriptBus bus;
    bus.feed(0, { 12, 7, 30, 9, 14, 11, 45, 8, 13, 10, 9, 28, 12,
                  11, 7, 14 });
    Machine m(encodeProgram(p), bus);
    Machine::Outcome o = m.run();
    if (o.status != MachineStatus::Done) {
        std::printf("failed: %s\n", o.diagnostic.c_str());
        return 1;
    }
    const auto &out = bus.written(1);
    std::printf("series: 16 values on port 0\n");
    std::printf("sum = %d, mean = %d, max = %d, outliers(>mean+10) "
                "= %d\n",
                out[0], out[1], out[2], out[3]);
    std::printf("\nmachine: %llu cycles, CPI %.2f, %llu heap words "
                "allocated, %llu GC runs\n",
                (unsigned long long)m.cycles(), m.stats().cpiNoGc(),
                (unsigned long long)m.stats().allocatedWords,
                (unsigned long long)m.stats().gcRuns);
    std::printf("\nthe same program text reuses the %zu-declaration "
                "prelude shipped in src/zasm/prelude.cc.\n",
                assembleOrDie("fun main =\n  result 0\n" +
                              preludeText())
                        .decls.size() -
                    1);
    return 0;
}
