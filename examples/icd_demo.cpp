/**
 * @file
 * The paper's flagship demo, end to end: the verified ICD on the
 * λ-execution layer, monitoring software on the imperative core,
 * and a synthetic heart that develops ventricular tachycardia and
 * converts back to sinus rhythm after anti-tachycardia pacing.
 */

#include <cstdio>

#include "icd/baseline.hh"
#include "icd/params.hh"
#include "icd/zarf_icd.hh"
#include "system/system.hh"

using namespace zarf;

int
main()
{
    std::printf("=== Zarf ICD demo: two-layer system ===\n\n");
    std::printf("building the kernel (microkernel + coroutines + "
                "extracted ICD)...\n");
    Image kernel = icd::buildKernelImage();
    std::printf("  %zu binary words\n\n", kernel.size());

    // A heart that goes into VT at t=15 s and converts after a full
    // 8-pulse burst.
    ecg::ResponsiveHeart heart(15.0, 75.0, 190.0, 8, 3);
    sys::TwoLayerSystem system(kernel, icd::monitorProgram(), heart);

    std::printf("t=0 s: normal sinus rhythm at 75 bpm\n");
    system.runForMs(15000.0);
    std::printf("t=15 s: ventricular tachycardia onset (190 bpm)\n");

    uint64_t shocksBefore = system.shocks().size();
    double t = 15.0;
    bool converted = false;
    while (t < 60.0) {
        system.runForMs(1000.0);
        t += 1.0;
        // Report pacing activity as it happens.
        const auto &log = system.shocks();
        for (size_t i = shocksBefore; i < log.size(); ++i) {
            if (log[i].value == icd::kOutTherapyStart) {
                std::printf("t=%.1f s: ATP therapy started (burst "
                            "of %d pulses at 88%% coupling)\n",
                            double(log[i].lambdaCycle) / 50e6,
                            int(icd::kAtpPulses));
            }
        }
        shocksBefore = log.size();
        if (!converted && !heart.inVt() &&
            heart.pulsesReceived() > 0) {
            converted = true;
            std::printf("t=%.1f s: heart converted to sinus rhythm "
                        "after %d pacing pulses\n", t,
                        heart.pulsesReceived());
        }
    }

    uint64_t pulses = 0;
    for (const auto &e : system.shocks())
        pulses += e.value != icd::kOutNone;

    std::printf("\n--- 60 s summary ---\n");
    std::printf("samples processed: %llu (one per 5 ms tick)\n",
                (unsigned long long)system.samplesRead());
    std::printf("pacing pulses delivered: %llu\n",
                (unsigned long long)pulses);
    std::printf("real-time: max tick lag %llu cycles (%.1f us); "
                "deadline missed: %s\n",
                (unsigned long long)system.maxTickLag(),
                double(system.maxTickLag()) / 50.0,
                system.deadlineMissed() ? "YES" : "never");
    std::printf("worst iteration compute: %llu cycles of the "
                "250,000-cycle budget\n",
                (unsigned long long)system.maxIterationCycles());

    auto count = system.queryTreatments();
    std::printf("monitoring software (imperative layer) reports %d "
                "therapy episode(s) over the diagnostic channel\n",
                count ? *count : -1);

    const MachineStats &s = system.lambdaStats();
    std::printf("\nλ-layer dynamic statistics:\n%s",
                s.report().c_str());
    return 0;
}
