/**
 * @file
 * Imperative-core tests: assembler syntax, every instruction's
 * semantics, timing model, memory protection, and I/O.
 */

#include <gtest/gtest.h>

#include "mblaze/cpu.hh"
#include "mblaze/isa.hh"

namespace zarf::mblaze
{
namespace
{

/** Assemble, run to halt, and return the CPU for inspection. */
MbCpu
runAsm(const std::string &text, const MbProgram *&keep, IoBus &bus)
{
    static MbProgram prog; // storage outlives the cpu in each test
    prog = assembleMbOrDie(text);
    keep = &prog;
    MbCpu cpu(prog, bus);
    cpu.run();
    return cpu;
}

SWord
regAfter(const std::string &text, unsigned r)
{
    NullBus bus;
    const MbProgram *p = nullptr;
    MbCpu cpu = runAsm(text, p, bus);
    EXPECT_EQ(cpu.status(), MbStatus::Halted);
    return cpu.reg(r);
}

TEST(MbAsm, ParsesAndResolvesLabels)
{
    MbAsmResult r = assembleMb(R"(
start:
  movi r1, 5
loop:
  addi r1, r1, -1
  bne r1, r0, loop
  halt
)");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.program.code.size(), 4u);
    EXPECT_EQ(r.program.labelAt("loop"), 1);
    // The branch's target was resolved to instruction index 1.
    EXPECT_EQ(r.program.code[2].imm, 1);
}

TEST(MbAsm, RejectsBadInput)
{
    EXPECT_FALSE(assembleMb("frobnicate r1, r2").ok);
    EXPECT_FALSE(assembleMb("add r1, r2").ok);       // arity
    EXPECT_FALSE(assembleMb("add r1, r2, r99").ok);  // register
    EXPECT_FALSE(assembleMb("j nowhere").ok);        // label
    EXPECT_FALSE(assembleMb("movi r1, x").ok);       // immediate
    EXPECT_FALSE(assembleMb("l: nop\nl: nop").ok);   // dup label
}

TEST(MbCpu, Arithmetic)
{
    EXPECT_EQ(regAfter("movi r1, 6\nmovi r2, 7\nmul r3, r1, r2\n"
                       "halt", 3),
              42);
    EXPECT_EQ(regAfter("movi r1, 45\nmovi r2, 4\ndiv r3, r1, r2\n"
                       "rem r4, r1, r2\nhalt", 3),
              11);
    EXPECT_EQ(regAfter("movi r1, -8\nsrai r2, r1, 1\nhalt", 2), -4);
    EXPECT_EQ(regAfter("movi r1, -8\nshri r2, r1, 28\nhalt", 2), 15);
    EXPECT_EQ(regAfter("movi r1, 3\nslti r2, r1, 5\nhalt", 2), 1);
    EXPECT_EQ(regAfter("movi r1, 3\nmovi r2, 5\nslt r3, r2, r1\n"
                       "halt", 3),
              0);
}

TEST(MbCpu, DivideByZeroYieldsZero)
{
    EXPECT_EQ(regAfter("movi r1, 9\ndiv r2, r1, r0\nhalt", 2), 0);
}

TEST(MbCpu, RegisterZeroIsHardwired)
{
    EXPECT_EQ(regAfter("movi r0, 99\nadd r1, r0, r0\nhalt", 1), 0);
}

TEST(MbCpu, LoadStore)
{
    EXPECT_EQ(regAfter(R"(
  movi r1, 100
  movi r2, 42
  sw r2, r1, 5
  lw r3, r1, 5
  halt
)", 3),
              42);
}

TEST(MbCpu, MemoryFaultDetected)
{
    NullBus bus;
    MbProgram p = assembleMbOrDie("movi r1, -5\nlw r2, r1, 0\nhalt");
    MbCpu cpu(p, bus);
    EXPECT_EQ(cpu.run(), MbStatus::Fault);
}

TEST(MbCpu, LoopAndBranches)
{
    // Sum 1..10 = 55.
    EXPECT_EQ(regAfter(R"(
  movi r1, 10
  movi r2, 0
loop:
  add r2, r2, r1
  addi r1, r1, -1
  bgt r1, r0, loop
  halt
)", 2),
              55);
}

TEST(MbCpu, JalAndJr)
{
    EXPECT_EQ(regAfter(R"(
  movi r1, 20
  jal r15, double
  addi r2, r1, 2
  halt
double:
  add r1, r1, r1
  jr r15
)", 2),
              42);
}

TEST(MbCpu, PortIo)
{
    ScriptBus bus;
    bus.feed(0, { 7 });
    const MbProgram *p = nullptr;
    MbCpu cpu = runAsm(R"(
  in r1, 0
  addi r1, r1, 3
  out r1, 2
  halt
)", p, bus);
    EXPECT_EQ(cpu.status(), MbStatus::Halted);
    EXPECT_EQ(bus.written(2), (std::vector<SWord>{ 10 }));
}

TEST(MbCpu, TimingModel)
{
    NullBus bus;
    // movi(2) + add(1) + halt(1) = 4 cycles.
    MbProgram p1 = assembleMbOrDie("movi r1, 1\nadd r2, r1, r1\nhalt");
    MbCpu c1(p1, bus);
    c1.run();
    EXPECT_EQ(c1.cycles(), 4u);

    // Taken branch pays +2: movi(2) + j(3) + halt(1) = 6.
    MbProgram p2 = assembleMbOrDie("movi r1, 1\nj end\nnop\nend: halt");
    MbCpu c2(p2, bus);
    c2.run();
    EXPECT_EQ(c2.cycles(), 6u);

    // mul is 3 cycles, div is 34.
    MbProgram p3 = assembleMbOrDie("mul r1, r2, r3\nhalt");
    MbCpu c3(p3, bus);
    c3.run();
    EXPECT_EQ(c3.cycles(), 4u);
    MbProgram p4 = assembleMbOrDie("div r1, r2, r3\nhalt");
    MbCpu c4(p4, bus);
    c4.run();
    EXPECT_EQ(c4.cycles(), 35u);
}

TEST(MbCpu, AdvanceIsResumable)
{
    NullBus bus;
    MbProgram p = assembleMbOrDie(R"(
  movi r1, 100000
loop:
  addi r1, r1, -1
  bgt r1, r0, loop
  halt
)");
    MbCpu cpu(p, bus);
    int slices = 0;
    while (cpu.advance(10'000) == MbStatus::Running)
        ++slices;
    EXPECT_GT(slices, 5);
    EXPECT_EQ(cpu.status(), MbStatus::Halted);
    EXPECT_EQ(cpu.reg(1), 0);
}

TEST(MbCpu, UntakenBranchIsOneCycle)
{
    NullBus bus;
    MbProgram p = assembleMbOrDie("beq r1, r2, t\nt: halt");
    MbCpu cpu(p, bus);
    cpu.run();
    // beq taken (r1==r2==0): 1+2, halt 1 => 4. Branch to next instr
    // still pays the flush in this simple model.
    EXPECT_EQ(cpu.cycles(), 4u);

    MbProgram p2 = assembleMbOrDie(
        "movi r1, 1\nbeq r1, r0, t\nt: halt");
    MbCpu cpu2(p2, bus);
    cpu2.run();
    // movi 2 + untaken beq 1 + halt 1 = 4.
    EXPECT_EQ(cpu2.cycles(), 4u);
}

TEST(MbDisasm, MentionsLabelsAndOps)
{
    MbProgram p = assembleMbOrDie("start: movi r1, 5\nhalt");
    std::string d = disassembleMb(p);
    EXPECT_NE(d.find("start:"), std::string::npos);
    EXPECT_NE(d.find("movi"), std::string::npos);
}

} // namespace
} // namespace zarf::mblaze
