/**
 * @file
 * Golden-trace regression tests (docs/OBSERVABILITY.md): two fixed
 * co-simulation scenarios whose trace and metrics JSON are checked
 * in under tests/golden/ and byte-diffed on every run. Any change to
 * event emission points, timestamps, cycle accounting, or JSON
 * rendering shows up here as a readable diff.
 *
 * Regenerating after an intentional change:
 *
 *   ZARF_OBS_REGEN=1 ctest -R ObsGolden
 *
 * (or run the test binary directly with the variable set), then
 * review the fixture diff like any other code change.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>

#include <fstream>
#include <sstream>
#include <string>

#include "ecg/synth.hh"
#include "fault/plan.hh"
#include "icd/baseline.hh"
#include "icd/zarf_icd.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "system/system.hh"

#ifndef ZARF_OBS_FIXTURE_DIR
#error "ZARF_OBS_FIXTURE_DIR must point at tests/golden"
#endif

namespace zarf
{
namespace
{

bool
regenerating()
{
    const char *v = std::getenv("ZARF_OBS_REGEN");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

std::string
fixturePath(const std::string &name)
{
    return std::string(ZARF_OBS_FIXTURE_DIR) + "/" + name;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << content;
}

/** Compare `produced` against the checked-in fixture, or rewrite the
 *  fixture under ZARF_OBS_REGEN=1. */
void
checkGolden(const std::string &name, const std::string &produced)
{
    std::string path = fixturePath(name);
    if (regenerating()) {
        writeFile(path, produced);
        std::printf("regenerated %s (%zu bytes)\n", path.c_str(),
                    produced.size());
        return;
    }
    std::string expected = readFile(path);
    ASSERT_FALSE(expected.empty())
        << path << " is missing or empty; regenerate with "
        << "ZARF_OBS_REGEN=1";
    // Byte-for-byte. On mismatch print a targeted diff hint rather
    // than two multi-kilobyte blobs.
    if (produced != expected) {
        size_t i = 0;
        while (i < produced.size() && i < expected.size() &&
               produced[i] == expected[i])
            ++i;
        size_t from = i < 80 ? 0 : i - 80;
        FAIL() << name << " diverged from the golden fixture at "
               << "byte " << i << "\n  expected ..."
               << expected.substr(from, 160) << "\n  produced ..."
               << produced.substr(from, 160)
               << "\nIf the change is intentional, regenerate with "
               << "ZARF_OBS_REGEN=1 and review the fixture diff.";
    }
}

/** The golden scenarios trace the cheap categories only: lifecycle,
 *  GC, and system events are low-volume and fully deterministic;
 *  per-instruction exec events would blow the ring on a 250 ms run
 *  without adding regression value beyond the property suite. */
obs::TraceConfig
goldenTraceConfig()
{
    obs::TraceConfig tcfg;
    tcfg.capacity = 1u << 16;
    tcfg.mask = uint32_t(obs::Cat::System) |
                uint32_t(obs::Cat::MachineLife) |
                uint32_t(obs::Cat::MachineGc);
    return tcfg;
}

TEST(ObsGolden, IcdHalfCycleTraceAndMetrics)
{
    // A clean quarter-second of the ICD kernel on a steady sinus
    // rhythm: ticks, channel traffic, GC pauses — no faults.
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
    sys::SystemConfig cfg;
    cfg.lambdaFsmTally = true;
    obs::Recorder rec(goldenTraceConfig());
    cfg.trace = &rec;
    sys::TwoLayerSystem system(icd::buildKernelImage(),
                               icd::monitorProgram(), heart, cfg);
    EXPECT_EQ(system.runForMs(250.0), MachineStatus::Running);
    ASSERT_EQ(rec.dropped(), 0u)
        << "golden trace must hold every event";

    checkGolden("obs_icd_halfcycle.trace.json", rec.toChromeJson());
    obs::Metrics m;
    system.exportMetrics(m);
    checkGolden("obs_icd_halfcycle.metrics.json", m.toJson());
}

TEST(ObsGolden, FaultScenarioTraceAndMetrics)
{
    // A fixed fault scenario: an uncorrectable double-bit heap SEU
    // under ECC at 0.5 s — MemFault, watchdog trip, bounded-blackout
    // restart, resync — over 600 ms.
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
    sys::SystemConfig cfg;
    cfg.fallbackProgram = icd::baselineIcdProgram();
    cfg.faultPlan.heapEcc = true;
    cfg.faultPlan.events.push_back(
        { 25'000'000, fault::FaultKind::HeapSeuDouble, 1, 0x0102 });
    cfg.lambdaFsmTally = true;
    obs::Recorder rec(goldenTraceConfig());
    cfg.trace = &rec;
    sys::TwoLayerSystem system(icd::buildKernelImage(),
                               icd::monitorProgram(), heart, cfg);
    EXPECT_EQ(system.runForMs(600.0), MachineStatus::Running);
    EXPECT_EQ(system.watchdogRestarts(), 1u);
    ASSERT_EQ(rec.dropped(), 0u)
        << "golden trace must hold every event";

    checkGolden("obs_fault_scenario.trace.json", rec.toChromeJson());
    obs::Metrics m;
    system.exportMetrics(m);
    checkGolden("obs_fault_scenario.metrics.json", m.toJson());
}

} // namespace
} // namespace zarf
