/**
 * @file
 * Integrity-type-system corner cases: partial application labels,
 * tainted data deconstruction, case-result raising, immediate-port
 * enforcement, and higher-order signatures.
 */

#include <gtest/gtest.h>

#include "lowlevel/extract.hh"
#include "verify/itype.hh"

namespace zarf::verify
{
namespace
{

using namespace ll;

/** Build a tiny program and a matching env in one place. */
struct Fixture
{
    Program p;
    TypeEnv env;

    Word
    id(const char *name) const
    {
        int i = p.findByName(name);
        EXPECT_GE(i, 0) << name;
        return Program::idOf(size_t(std::max(i, 0)));
    }
};

TEST(ITypeCorners, TaintedDataTaintsFields)
{
    // unbox reads a field out of a Box; if the box is untrusted the
    // field must be too.
    LProgram lp;
    lp.cons("Box", 1);
    lp.fn("main", {}, lit(0));
    lp.fn("unbox", { "b" },
          match(v("b"), { onCons("Box", { "x" }, v("x")) }, lit(0)));
    Fixture f;
    f.p = extractOrDie(lp);
    DataDecl d;
    d.name = "Box";
    d.conses[f.id("Box")] = { tNum(Label::T) };
    int dBox = f.env.addData(d);
    f.env.funs[f.id("main")] = { {}, tNum(Label::T) };

    // Trusted box -> trusted field: accepted with result T.
    f.env.funs[f.id("unbox")] = { { tData(dBox, Label::T) },
                                  tNum(Label::T) };
    EXPECT_TRUE(checkIntegrity(f.p, f.env).ok())
        << checkIntegrity(f.p, f.env).summary();

    // Untrusted box -> claiming a trusted field: rejected.
    f.env.funs[f.id("unbox")] = { { tData(dBox, Label::U) },
                                  tNum(Label::T) };
    EXPECT_FALSE(checkIntegrity(f.p, f.env).ok());

    // Untrusted box -> untrusted result: accepted.
    f.env.funs[f.id("unbox")] = { { tData(dBox, Label::U) },
                                  tNum(Label::U) };
    EXPECT_TRUE(checkIntegrity(f.p, f.env).ok());
}

TEST(ITypeCorners, CaseOnUntrustedScrutineeTaintsResult)
{
    LProgram lp;
    lp.fn("main", {}, lit(0));
    lp.fn("pick", { "u" },
          match(v("u"), { onLit(0, lit(10)) }, lit(20)));
    Fixture f;
    f.p = extractOrDie(lp);
    f.env.funs[f.id("main")] = { {}, tNum(Label::T) };

    // Claiming a trusted result from an untrusted branch choice
    // must fail...
    f.env.funs[f.id("pick")] = { { tNum(Label::U) },
                                 tNum(Label::T) };
    EXPECT_FALSE(checkIntegrity(f.p, f.env).ok());
    // ...but an untrusted result is fine.
    f.env.funs[f.id("pick")] = { { tNum(Label::U) },
                                 tNum(Label::U) };
    EXPECT_TRUE(checkIntegrity(f.p, f.env).ok())
        << checkIntegrity(f.p, f.env).summary();
}

TEST(ITypeCorners, PartialApplicationCarriesSignature)
{
    // apply2 (add2 1) — a closure flows through a higher-order
    // signature.
    LProgram lp;
    lp.fn("main", {},
          letIn("f", call("add2", { lit(1) }),
                call("apply2", { v("f"), lit(41) })));
    lp.fn("add2", { "a", "b" }, v("a") + v("b"));
    lp.fn("apply2", { "f", "x" }, call("f", { v("x") }));
    Fixture f;
    f.p = extractOrDie(lp);
    ITypePtr nT = tNum(Label::T);
    f.env.funs[f.id("main")] = { {}, nT };
    f.env.funs[f.id("add2")] = { { nT, nT }, nT };
    f.env.funs[f.id("apply2")] =
        { { tFun({ nT }, nT), nT }, nT };
    ITypeReport r = checkIntegrity(f.p, f.env);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(ITypeCorners, UntrustedClosureTaintsItsResult)
{
    LProgram lp;
    lp.fn("main", {}, lit(0));
    lp.fn("applyU", { "f" }, call("f", { lit(1) }));
    Fixture f;
    f.p = extractOrDie(lp);
    ITypePtr nT = tNum(Label::T);
    f.env.funs[f.id("main")] = { {}, nT };
    // The closure parameter itself is untrusted: even though it
    // maps T->T, its identity is attacker-chosen, so the call's
    // result cannot be trusted.
    f.env.funs[f.id("applyU")] =
        { { tFun({ nT }, nT, Label::U) }, tNum(Label::T) };
    EXPECT_FALSE(checkIntegrity(f.p, f.env).ok());
    f.env.funs[f.id("applyU")] =
        { { tFun({ nT }, nT, Label::U) }, tNum(Label::U) };
    EXPECT_TRUE(checkIntegrity(f.p, f.env).ok())
        << checkIntegrity(f.p, f.env).summary();
}

TEST(ITypeCorners, IoPortMustBeImmediate)
{
    // The port arrives through a parameter, so the operand is not
    // an immediate (the extractor substitutes letIn-bound literals,
    // so a local letIn would not exercise this path).
    LProgram lp;
    lp.fn("main", {}, call("readP", { lit(3) }));
    lp.fn("readP", { "p" }, call("getint", { v("p") }));
    Fixture f;
    f.p = extractOrDie(lp);
    f.env.funs[f.id("main")] = { {}, tNum(Label::U) };
    f.env.funs[f.id("readP")] = { { tNum(Label::T) },
                                  tNum(Label::U) };
    ITypeReport r = checkIntegrity(f.p, f.env);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("immediate"), std::string::npos);
}

TEST(ITypeCorners, SignatureArityMismatchCaught)
{
    LProgram lp;
    lp.fn("main", {}, lit(0));
    lp.fn("two", { "a", "b" }, v("a"));
    Fixture f;
    f.p = extractOrDie(lp);
    f.env.funs[f.id("main")] = { {}, tNum(Label::T) };
    f.env.funs[f.id("two")] = { { tNum(Label::T) },
                                tNum(Label::T) };
    ITypeReport r = checkIntegrity(f.p, f.env);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("arity"), std::string::npos);
}

TEST(ITypeCorners, UnlistedPortDefaultsUntrusted)
{
    TypeEnv env;
    EXPECT_EQ(env.portLabel(1234), Label::U);
    env.ports[7] = Label::T;
    EXPECT_EQ(env.portLabel(7), Label::T);
}

} // namespace
} // namespace zarf::verify
