/**
 * @file
 * Machine edge-case tests: padded zero-argument objects, deferred
 * callees (AppV), over-application chains, the heap census API, the
 * interval GC policy, pause accounting, and stats invariants.
 */

#include <gtest/gtest.h>

#include "common/testprogs.hh"
#include "machine/machine.hh"
#include "zasm/zasm.hh"

namespace zarf
{
namespace
{

Machine::Outcome
run(const std::string &text, MachineConfig cfg = {})
{
    NullBus bus;
    Machine m(encodeProgram(assembleOrDie(text)), bus, cfg);
    return m.run();
}

TEST(MachineEdge, ZeroArgFunctionThunk)
{
    // `let x = f` with f of arity 0 allocates a padded thunk that
    // must still be updatable in place.
    Machine::Outcome o = run(R"(
fun main =
  let x = fortyTwo
  let y = add x 0
  let z = add x y
  result z
fun fortyTwo =
  result 42
)");
    ASSERT_EQ(o.status, MachineStatus::Done) << o.diagnostic;
    EXPECT_EQ(o.value->intVal(), 84);
}

TEST(MachineEdge, ZeroFieldConstructor)
{
    Machine::Outcome o = run(R"(
con Unit
fun main =
  let u = Unit
  case u of
    Unit =>
      result 1
  else
    result 0
)");
    ASSERT_EQ(o.status, MachineStatus::Done);
    EXPECT_EQ(o.value->intVal(), 1);
}

TEST(MachineEdge, DeferredCalleeThunk)
{
    // The callee itself is an unevaluated thunk (AppV object):
    // pick n returns a closure; we apply before forcing it.
    Machine::Outcome o = run(R"(
fun main =
  let f = pick 3
  let x = f 40
  result x
fun pick n =
  case n of
    0 =>
      let g = adder 1
      result g
  else
    let g = adder 2
    result g
fun adder a b =
  let s = add a b
  result s
)");
    ASSERT_EQ(o.status, MachineStatus::Done) << o.diagnostic;
    EXPECT_EQ(o.value->intVal(), 42);
}

TEST(MachineEdge, OverApplicationChain)
{
    // f returns g partially applied; over-application threads
    // through two Apply continuations.
    Machine::Outcome o = run(R"(
fun main =
  let x = makeAdd 2 40
  result x
fun makeAdd a =
  let g = add3 a 0
  result g
fun add3 a b c =
  let t = add a b
  let s = add t c
  result s
)");
    ASSERT_EQ(o.status, MachineStatus::Done) << o.diagnostic;
    EXPECT_EQ(o.value->intVal(), 42);
}

TEST(MachineEdge, CaseOnClosureFallsToElse)
{
    Machine::Outcome o = run(R"(
con Box v
fun main =
  let f = adder 1
  case f of
    Box v =>
      result 0
    5 =>
      result 1
  else
    result 42
fun adder a b =
  let s = add a b
  result s
)");
    ASSERT_EQ(o.status, MachineStatus::Done);
    EXPECT_EQ(o.value->intVal(), 42);
}

TEST(MachineEdge, HeapCensusCountsLiveObjects)
{
    Program p = assembleOrDie(R"(
con Pair a b
fun main =
  let x = Pair 1 2
  let y = Pair 3 4
  let z = Pair x y
  result z
)");
    NullBus bus;
    Machine m(encodeProgram(p), bus);
    ASSERT_EQ(m.advance(100000), MachineStatus::Done);
    auto census = m.heapCensus();
    // Three live Pair objects survive the census collection.
    size_t pairObjs = 0, pairWords = 0;
    for (const auto &e : census) {
        if (e.kind == ObjKind::Cons && e.fn == Program::idOf(0)) {
            pairObjs = e.objects;
            pairWords = e.words;
        }
    }
    EXPECT_EQ(pairObjs, 3u);
    EXPECT_EQ(pairWords, 9u);
}

TEST(MachineEdge, IntervalGcPolicyRuns)
{
    MachineConfig cfg;
    cfg.gcIntervalCycles = 5000;
    NullBus bus;
    Machine m(encodeProgram(
                  assembleOrDie(testing::countdownProgramText())),
              bus, cfg);
    Machine::Outcome o = m.run();
    ASSERT_EQ(o.status, MachineStatus::Done);
    // ~100k iterations at ~30 cycles each => hundreds of interval
    // collections.
    EXPECT_GT(m.stats().gcRuns, 100u);
    EXPECT_GT(m.stats().gcMaxPauseCycles, 0u);
    EXPECT_LE(m.stats().gcMaxPauseCycles, m.stats().gcCycles);
}

TEST(MachineEdge, PauseAccountingConsistent)
{
    MachineConfig cfg;
    cfg.semispaceWords = 1 << 14;
    NullBus bus;
    Machine m(encodeProgram(
                  assembleOrDie(testing::countdownProgramText())),
              bus, cfg);
    ASSERT_EQ(m.run().status, MachineStatus::Done);
    const MachineStats &s = m.stats();
    ASSERT_GT(s.gcRuns, 0u);
    EXPECT_GE(s.gcMaxPauseCycles, s.gcCycles / s.gcRuns)
        << "max pause below the mean pause";
}

TEST(MachineEdge, StatsInvariants)
{
    NullBus bus;
    Machine m(encodeProgram(assembleOrDie(
        testing::churchProgramText())), bus);
    ASSERT_EQ(m.run().status, MachineStatus::Done);
    const MachineStats &s = m.stats();
    // Every force either entered a thunk or hit WHNF; updates can't
    // outnumber forces plus collapses.
    EXPECT_GE(s.forces + s.whnfHits, s.forces);
    EXPECT_GT(s.allocatedWords, s.allocations); // header + payload
    // Cycle ledger: class cycles are a subset of exec cycles.
    EXPECT_LE(s.let.cycles + s.caseInstr.cycles + s.result.cycles,
              s.execCycles);
    // The machine clock carries load + execution only; GC is
    // accounted off the mutator clock (Machine::cycles() doc).
    EXPECT_EQ(m.cycles(), s.loadCycles + s.execCycles);
}

TEST(MachineEdge, CycleLedgerExcludesGcTime)
{
    // The StatsInvariants workload barely collects; force hundreds
    // of collections in a tight heap so the ledger contract is
    // checked where it matters.
    MachineConfig cfg;
    cfg.semispaceWords = 1 << 14;
    NullBus bus;
    Machine m(encodeProgram(
                  assembleOrDie(testing::countdownProgramText())),
              bus, cfg);
    ASSERT_EQ(m.run().status, MachineStatus::Done);
    const MachineStats &s = m.stats();
    ASSERT_GT(s.gcRuns, 0u);
    ASSERT_GT(s.gcCycles, 0u);
    EXPECT_EQ(m.cycles(), s.loadCycles + s.execCycles);
}

TEST(MachineEdge, DeepDataExport)
{
    // A 50-deep nested structure exports without blowing limits.
    Machine::Outcome o = run(R"(
con Wrap inner
fun main =
  let z = build 50
  result z
fun build n =
  case n of
    0 =>
      let w = Wrap 0
      result w
    else
      let n' = sub n 1
      let inner = build n'
      let w = Wrap inner
      result w
)");
    ASSERT_EQ(o.status, MachineStatus::Done) << o.diagnostic;
    int depth = 0;
    const Value *v = o.value.get();
    while (v->isCons() && v->items().size() == 1 &&
           v->items()[0]->isCons()) {
        v = v->items()[0].get();
        ++depth;
    }
    EXPECT_EQ(depth, 50);
}

TEST(MachineEdge, NegativeImmediatesThroughout)
{
    Machine::Outcome o = run(R"(
fun main =
  let a = add -20 -22
  case a of
    -42 =>
      result -1
  else
    result 0
)");
    ASSERT_EQ(o.status, MachineStatus::Done);
    EXPECT_EQ(o.value->intVal(), -1);
}

} // namespace
} // namespace zarf
