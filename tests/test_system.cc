/**
 * @file
 * End-to-end two-layer system tests: the λ-layer kernel (microkernel
 * + coroutines + extracted ICD) co-simulated with the imperative
 * monitor against synthetic hearts. Checks real-time deadlines,
 * therapy delivery, inter-layer communication, and the diagnostic
 * channel (paper, Sec. 4 and 5.2).
 */

#include <gtest/gtest.h>

#include "icd/params.hh"
#include "icd/spec.hh"
#include "icd/zarf_icd.hh"
#include "icd/baseline.hh"
#include "system/system.hh"

namespace zarf::sys
{
namespace
{

const Image &
kernelImage()
{
    static Image img = icd::buildKernelImage();
    return img;
}

TEST(System, BootsAndMeetsDeadlinesOnNormalRhythm)
{
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart);
    MachineStatus st = sys.runForMs(3000.0); // 3 s = 600 samples
    EXPECT_EQ(st, MachineStatus::Running);

    // One sample per 5 ms tick.
    EXPECT_NEAR(double(sys.samplesRead()), 600.0, 3.0);
    EXPECT_EQ(sys.samplesRead(), sys.ticksConsumed());
    // Real-time: every tick consumed well before the next is due.
    EXPECT_FALSE(sys.deadlineMissed());
    EXPECT_LT(sys.maxTickLag(), kTickCycles / 4);
    // One comm word per iteration.
    EXPECT_NEAR(double(sys.commWords()), 600.0, 3.0);
    // No pacing on normal rhythm (shock port writes all zero).
    for (const ShockEvent &e : sys.shocks())
        EXPECT_EQ(e.value, 0);
}

TEST(System, IterationComputeFitsWellWithinDeadline)
{
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 7);
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart);
    sys.runForMs(2000.0);
    // Paper, Sec. 5.2: one iteration's compute (including GC) is
    // ~9k cycles against a 250k-cycle (5 ms) deadline — "over 25
    // times faster than it needs to be". Require at least 10x.
    EXPECT_GT(sys.maxIterationCycles(), 0u);
    EXPECT_LT(sys.maxIterationCycles(), kTickCycles / 10);
}

TEST(System, GcRunsEveryIterationAndHeapStaysBounded)
{
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 9);
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart);
    sys.runForMs(1000.0);
    const MachineStats &s = sys.lambdaStats();
    // The kernel invokes the collector once per iteration.
    EXPECT_NEAR(double(s.gcRuns), double(sys.samplesRead()), 4.0);
    // The live set is a bounded algorithm state, far below the
    // semispace capacity.
    EXPECT_LT(s.gcMaxLiveWords, (1u << 18) / 4);
}

TEST(System, DeliversTherapyAndConvertsVt)
{
    // VT at 15 s; the heart converts after one full burst.
    ecg::ResponsiveHeart heart(15.0, 75.0, 190.0, 8, 3);
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart);
    sys.runForMs(40000.0); // 40 s

    // Pacing pulses were delivered and the heart converted.
    uint64_t pulses = 0;
    bool sawStart = false;
    for (const ShockEvent &e : sys.shocks()) {
        if (e.value == icd::kOutTherapyStart)
            sawStart = true;
        if (e.value != icd::kOutNone)
            ++pulses;
    }
    EXPECT_TRUE(sawStart);
    EXPECT_GE(pulses, uint64_t(icd::kAtpPulses));
    EXPECT_FALSE(heart.inVt());
    EXPECT_FALSE(sys.deadlineMissed());
}

TEST(System, MonitorCountsTherapiesAndAnswersDiagnostics)
{
    ecg::ResponsiveHeart heart(10.0, 75.0, 190.0, 8, 5);
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart);
    sys.runForMs(30000.0);

    auto count = sys.queryTreatments();
    ASSERT_TRUE(count.has_value());
    EXPECT_GE(*count, 1);
    EXPECT_LE(*count, 3);

    // Query again: the count is stable once the rhythm is sinus.
    auto again = sys.queryTreatments();
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *count);
}

TEST(System, LambdaOutputsMatchSpecExactly)
{
    // The comm stream from the co-simulated λ-layer must equal the
    // specification's output stream sample for sample — the
    // refinement argument holds end-to-end, not just in the
    // lock-step harness.
    ecg::ScriptedHeart heartA({ { 20.0, 75.0 }, { 60.0, 190.0 } },
                              13);
    ecg::ScriptedHeart heartB({ { 20.0, 75.0 }, { 60.0, 190.0 } },
                              13);

    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heartA);
    // Drain the channel continuously via a monitor that just counts;
    // we compare against the spec using the shock log instead (the
    // pacing port sees lastOut, i.e. output n arrives at tick n+1).
    sys.runForMs(40000.0);

    icd::IcdSpec spec;
    std::vector<SWord> want;
    for (uint64_t i = 0; i < sys.samplesRead(); ++i)
        want.push_back(spec.step(heartB.nextSample()));

    const auto &log = sys.shocks();
    ASSERT_GE(log.size(), 2u);
    // shock[0] is the initial lastOut=0; shock[k] = out[k-1].
    EXPECT_EQ(log[0].value, 0);
    size_t n = std::min(log.size() - 1, want.size());
    ASSERT_GT(n, 7000u);
    for (size_t k = 0; k < n; ++k) {
        ASSERT_EQ(log[k + 1].value, want[k])
            << "mismatch at iteration " << k;
    }
}

TEST(System, BaselineSystemAlsoRunsStandalone)
{
    // The all-imperative alternative: the baseline ICD on the
    // imperative core with the same devices (no λ-layer). Reuses
    // the λ-side port map.
    ecg::ResponsiveHeart heart(10.0, 75.0, 190.0, 8, 5);

    class Rig : public IoBus
    {
      public:
        Rig(ecg::Heart &h, uint64_t totalTicks)
            : heart(h), ticksLeft(totalTicks)
        {}
        SWord
        getInt(SWord port) override
        {
            if (port == kPortTimer) {
                if (ticksLeft == 0)
                    return 0;
                --ticksLeft;
                return 1;
            }
            if (port == kPortEcgIn)
                return heart.nextSample();
            return 0;
        }
        void
        putInt(SWord port, SWord value) override
        {
            if (port == kPortShockOut)
                heart.onShock(value);
            else if (port == kPortCommOut)
                outs.push_back(value);
        }
        ecg::Heart &heart;
        uint64_t ticksLeft;
        std::vector<SWord> outs;
    };

    Rig rig(heart, 6000); // 30 s of samples
    mblaze::MbCpu cpu(icd::baselineIcdProgram(), rig);
    cpu.run(60'000'000ull);
    ASSERT_EQ(rig.outs.size(), 6000u);
    int pulses = 0;
    for (SWord v : rig.outs)
        pulses += v != 0;
    EXPECT_GE(pulses, icd::kAtpPulses);
    EXPECT_FALSE(heart.inVt());
}

} // namespace
} // namespace zarf::sys
