/**
 * @file
 * Three-way differential testing: the cycle-level machine executing
 * the *binary image* must agree with both reference interpreters on
 * randomly generated pure programs. This chains every layer — the
 * builder, encoder, loader, and all three execution engines.
 */

#include <gtest/gtest.h>

#include "fuzz/genprog.hh"
#include "isa/binary.hh"
#include "machine/machine.hh"
#include "sem/bigstep.hh"
#include "sem/smallstep.hh"

namespace zarf
{
namespace
{

class MachineDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(MachineDifferential, MachineAgreesWithOracles)
{
    fuzz::GenConfig cfg;
    cfg.numCons = 4;
    cfg.numFuncs = 7;
    cfg.maxDepth = 5;
    fuzz::ProgramGenerator gen(GetParam() * 2654435761u + 7, cfg);
    ProgramBuilder pb = gen.generate();
    BuildResult b = pb.tryBuild();
    ASSERT_TRUE(b.ok) << b.error;

    NullBus bus1, bus2, bus3;
    BigStep bs(b.program, bus1);
    EvalResult er = bs.runMain();
    ASSERT_TRUE(er.ok());

    SmallStep ss(b.program, bus2);
    RunResult rr = ss.runMain();
    ASSERT_TRUE(rr.ok());

    Machine m(encodeProgram(b.program), bus3);
    Machine::Outcome o = m.run();
    ASSERT_EQ(o.status, MachineStatus::Done) << o.diagnostic;

    EXPECT_TRUE(Value::equal(*er.value, *o.value))
        << "bigstep: " << er.value->toString() << "\n"
        << "machine: " << o.value->toString();
    EXPECT_TRUE(Value::equal(*rr.value, *o.value))
        << "smallstep: " << rr.value->toString() << "\n"
        << "machine:   " << o.value->toString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineDifferential,
                         ::testing::Range(uint64_t(0), uint64_t(250)));

class MachineGcDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(MachineGcDifferential, TinyHeapDoesNotChangeResults)
{
    // The same random programs run with a heap small enough to force
    // many collections; results must be identical to the big heap.
    fuzz::GenConfig cfg;
    cfg.numCons = 4;
    cfg.numFuncs = 7;
    cfg.maxDepth = 5;
    fuzz::ProgramGenerator gen(GetParam() * 2654435761u + 7, cfg);
    BuildResult b = gen.generate().tryBuild();
    ASSERT_TRUE(b.ok) << b.error;
    Image img = encodeProgram(b.program);

    NullBus bus1, bus2;
    MachineConfig big;
    big.semispaceWords = 1 << 20;
    Machine m1(img, bus1, big);
    Machine::Outcome o1 = m1.run();
    ASSERT_EQ(o1.status, MachineStatus::Done) << o1.diagnostic;

    MachineConfig small;
    small.semispaceWords = 1 << 13; // minimum legal size
    Machine m2(img, bus2, small);
    Machine::Outcome o2 = m2.run();
    ASSERT_EQ(o2.status, MachineStatus::Done) << o2.diagnostic;

    EXPECT_TRUE(Value::equal(*o1.value, *o2.value));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineGcDifferential,
                         ::testing::Range(uint64_t(0), uint64_t(100)));

} // namespace
} // namespace zarf
