/**
 * @file
 * The seed-sharded parallel verification driver (verify/parallel.hh):
 * determinism across thread counts, campaign pass/fail behaviour on
 * clean and deliberately interfering programs, and exception capture.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "icd/zarf_icd.hh"
#include "verify/nidemo.hh"
#include "verify/parallel.hh"

namespace zarf
{
namespace
{

using namespace verify;

std::vector<SWord>
sensorStream()
{
    std::vector<SWord> s;
    for (int i = 0; i < 64; ++i)
        s.push_back(i * 13 % 97 - 40);
    return s;
}

bool
sameReport(const ParallelReport &a, const ParallelReport &b)
{
    if (a.outcomes.size() != b.outcomes.size())
        return false;
    for (size_t i = 0; i < a.outcomes.size(); ++i) {
        if (a.outcomes[i].seed != b.outcomes[i].seed ||
            a.outcomes[i].ok != b.outcomes[i].ok ||
            a.outcomes[i].detail != b.outcomes[i].detail) {
            return false;
        }
    }
    return true;
}

TEST(ParallelRunner, DeterministicAcrossThreadCounts)
{
    // The merged report must not depend on scheduling: 1 worker and
    // many workers see identical per-shard seeds and outcomes.
    auto fn = [](size_t i, uint64_t seed) {
        ShardOutcome o;
        o.ok = (seed % 3) != 0;
        o.detail = o.ok ? "" : std::to_string(i);
        return o;
    };
    ParallelConfig serial{ 1, 77, 32 };
    ParallelConfig wide{ 8, 77, 32 };
    ParallelReport a = runSharded(serial, fn);
    ParallelReport b = runSharded(wide, fn);
    EXPECT_TRUE(sameReport(a, b)) << a.summary() << "\n"
                                  << b.summary();
    EXPECT_EQ(a.outcomes.size(), 32u);
}

TEST(ParallelRunner, SeedsDependOnBaseAndIndexOnly)
{
    auto fn = [](size_t, uint64_t) { return ShardOutcome{ 0, true,
                                                          "" }; };
    ParallelReport a = runSharded({ 4, 5, 8 }, fn);
    ParallelReport b = runSharded({ 2, 5, 8 }, fn);
    ParallelReport c = runSharded({ 4, 6, 8 }, fn);
    EXPECT_TRUE(sameReport(a, b));
    EXPECT_NE(a.outcomes[0].seed, c.outcomes[0].seed);
}

TEST(ParallelRunner, ExceptionsBecomeFailedShards)
{
    auto fn = [](size_t i, uint64_t) -> ShardOutcome {
        if (i == 2)
            throw std::runtime_error("boom");
        return { 0, true, "" };
    };
    ParallelReport r = runSharded({ 4, 1, 4 }, fn);
    EXPECT_EQ(r.failed(), 1u);
    EXPECT_FALSE(r.outcomes[2].ok);
    EXPECT_NE(r.outcomes[2].detail.find("boom"), std::string::npos);
    EXPECT_NE(r.summary().find("3/4"), std::string::npos);
}

TEST(ParallelRunner, ZeroShardsIsEmptySuccess)
{
    auto fn = [](size_t, uint64_t) { return ShardOutcome{}; };
    ParallelReport r = runSharded({ 4, 1, 0 }, fn);
    EXPECT_TRUE(r.allOk());
    EXPECT_EQ(r.outcomes.size(), 0u);
}

// ----------------------------------------------------------------
// Campaigns
// ----------------------------------------------------------------

TEST(ParallelCampaigns, RefinementHoldsAcrossShards)
{
    Program p = icd::buildIcdStepProgram();
    ParallelConfig cfg{ 0, 11, 8 };
    ParallelReport r = refinementCampaign(p, 300, cfg);
    EXPECT_TRUE(r.allOk()) << r.summary();
    EXPECT_EQ(r.outcomes.size(), 8u);
}

TEST(ParallelCampaigns, CleanDemoIsNonInterferingEverywhere)
{
    Program p = buildNiDemo(NiVariant::Clean);
    TypeEnv env = niDemoTypeEnv(p);
    ParallelConfig cfg{ 0, 3, 12 };
    ParallelReport r =
        noninterferenceCampaign(p, env, sensorStream(), cfg);
    EXPECT_TRUE(r.allOk()) << r.summary();
}

TEST(ParallelCampaigns, ExplicitFlowCaughtByCampaign)
{
    Program p = buildNiDemo(NiVariant::ExplicitFlow);
    TypeEnv env = niDemoTypeEnv(p);
    ParallelConfig cfg{ 0, 3, 8 };
    ParallelReport r =
        noninterferenceCampaign(p, env, sensorStream(), cfg);
    EXPECT_GT(r.failed(), 0u) << r.summary();
    EXPECT_FALSE(r.allOk());
}

} // namespace
} // namespace zarf
