/**
 * @file
 * System-level resilience tests: watchdog detection and
 * bounded-blackout restart, state replay over the diagnostic
 * channel, graceful degradation to the imperative baseline, the
 * bounded inter-layer FIFO, the ECG front-end integrity monitor,
 * and the real-time deadline detectors (docs/RESILIENCE.md).
 */

#include <gtest/gtest.h>

#include "ecg/synth.hh"
#include "fault/plan.hh"
#include "icd/baseline.hh"
#include "icd/zarf_icd.hh"
#include "mblaze/isa.hh"
#include "obs/trace.hh"
#include "system/system.hh"

namespace zarf::sys
{
namespace
{

const Image &
kernelImage()
{
    static Image img = icd::buildKernelImage();
    return img;
}

SystemConfig
resilientConfig()
{
    SystemConfig cfg;
    cfg.fallbackProgram = icd::baselineIcdProgram();
    return cfg;
}

fault::FaultEvent
memFaultAt(Cycles cycle)
{
    // A double-bit heap SEU: uncorrectable under ECC, so the machine
    // raises MemFault at the scheduled cycle.
    return { cycle, fault::FaultKind::HeapSeuDouble, 1, 0x0102 };
}

TEST(Watchdog, RestartsOnMemFaultAndKeepsPacing)
{
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
    SystemConfig cfg = resilientConfig();
    cfg.faultPlan.events.push_back(memFaultAt(25'000'000));
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart,
                       cfg);

    MachineStatus st = sys.runForMs(2000.0);
    EXPECT_EQ(st, MachineStatus::Running);
    ASSERT_EQ(sys.watchdogRestarts(), 1u);

    const WatchdogEvent &ev = sys.watchdogLog().front();
    EXPECT_EQ(ev.machineStatus, MachineStatus::MemFault);
    EXPECT_GE(ev.atCycle, Cycles(25'000'000));
    // Bounded blackout: well under one 5 ms tick period.
    EXPECT_LT(ev.blackoutCycles, kTickCycles);
    EXPECT_FALSE(ev.degraded);

    // The system kept meeting deadlines outside the recovery grace
    // window, and kept consuming ticks after the restart.
    EXPECT_FALSE(sys.missedDeadlineOutsideRecovery());
    EXPECT_GT(sys.lastTickConsumedAt(), ev.atCycle);
    EXPECT_NEAR(double(sys.ticksConsumed()), 400.0, 8.0);
}

TEST(Watchdog, ResyncReplaysEpisodeCountAfterRestart)
{
    // VT at 1 s draws a therapy episode around 7 s (detection needs
    // ~6 s of VT beats); the λ-layer then dies at 8.5 s. The
    // watchdog restart replays the persisted episode count to the
    // monitor, so diagnostics still agree with the system's own
    // record.
    ecg::ResponsiveHeart heart(1.0, 75.0, 190.0, 8, 5);
    SystemConfig cfg = resilientConfig();
    cfg.faultPlan.events.push_back(memFaultAt(425'000'000));
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart,
                       cfg);

    sys.runForMs(10000.0);
    ASSERT_EQ(sys.watchdogRestarts(), 1u);
    ASSERT_GE(sys.persistedEpisodes(), 1);

    auto count = sys.queryTreatments();
    ASSERT_TRUE(count.has_value());
    EXPECT_EQ(*count, sys.persistedEpisodes());
}

TEST(Watchdog, DetectsWedgedPipelineAsHang)
{
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
    SystemConfig cfg = resilientConfig();
    // The λ pipeline stops retiring for 2.5M cycles (50 ms) while
    // its clock counts: no failure status, just silence. The
    // watchdog's tick-starvation detector must catch it.
    cfg.faultPlan.events.push_back(
        { 25'000'000, fault::FaultKind::LambdaWedge, 2'500'000, 0 });
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart,
                       cfg);

    sys.runForMs(2000.0);
    ASSERT_GE(sys.watchdogRestarts(), 1u);
    // A hang trips with the machine still notionally Running.
    EXPECT_EQ(sys.watchdogLog().front().machineStatus,
              MachineStatus::Running);
    // Pacing resumed after the restart.
    EXPECT_GT(sys.lastTickConsumedAt(),
              sys.watchdogLog().front().atCycle);
    EXPECT_FALSE(sys.missedDeadlineOutsideRecovery());
}

TEST(Watchdog, DegradesToBaselineAfterRepeatedFailures)
{
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
    SystemConfig cfg = resilientConfig();
    for (Cycles c : { 25'000'000, 50'000'000, 75'000'000,
                      100'000'000 })
        cfg.faultPlan.events.push_back(memFaultAt(c));
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart,
                       cfg);

    MachineStatus st = sys.runForMs(3000.0);
    // The system as a whole stays alive on the fallback detector.
    EXPECT_EQ(st, MachineStatus::Running);
    EXPECT_EQ(sys.watchdogRestarts(), 4u);
    EXPECT_TRUE(sys.degraded());
    EXPECT_FALSE(sys.lambdaDown());
    EXPECT_TRUE(sys.watchdogLog().back().degraded);

    // The baseline keeps consuming ticks (pacing continues).
    uint64_t before = sys.ticksConsumed();
    sys.runForMs(500.0);
    EXPECT_GE(sys.ticksConsumed(), before + 80);
}

TEST(Watchdog, NoFallbackMeansLambdaDown)
{
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
    SystemConfig cfg; // no fallbackProgram
    for (Cycles c : { 25'000'000, 50'000'000, 75'000'000,
                      100'000'000 })
        cfg.faultPlan.events.push_back(memFaultAt(c));
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart,
                       cfg);

    MachineStatus st = sys.runForMs(3000.0);
    EXPECT_TRUE(sys.lambdaDown());
    EXPECT_FALSE(sys.degraded());
    EXPECT_EQ(st, MachineStatus::MemFault);

    // With the λ-layer dead and nothing standing in, ticks stop.
    uint64_t before = sys.ticksConsumed();
    sys.runForMs(500.0);
    EXPECT_EQ(sys.ticksConsumed(), before);
}

// Satellite (c): the λ->mb FIFO is bounded; overflow drops are
// counted instead of growing the queue without bound.
TEST(BoundedChannel, OverflowBurstIsDetectedAndBounded)
{
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
    SystemConfig cfg = resilientConfig();
    cfg.channelCapacity = 4;
    cfg.faultPlan.events.push_back(
        { 30'000'000, fault::FaultKind::ChanOverflowBurst, 32, 0 });
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart,
                       cfg);

    sys.runForMs(1000.0);
    EXPECT_GE(sys.channelOverflows(), 20u);
    EXPECT_LE(sys.maxChannelDepth(), 4u);
    // The monitor rides out the junk burst and still answers.
    auto count = sys.queryTreatments();
    ASSERT_TRUE(count.has_value());
    EXPECT_EQ(*count, sys.persistedEpisodes());
}

TEST(BoundedChannel, DropAndDuplicateFaultsAreFlagged)
{
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
    SystemConfig cfg = resilientConfig();
    cfg.faultPlan.events.push_back(
        { 20'000'000, fault::FaultKind::ChanDrop, 0, 0 });
    cfg.faultPlan.events.push_back(
        { 40'000'000, fault::FaultKind::ChanDup, 0, 0 });
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart,
                       cfg);

    sys.runForMs(1000.0);
    EXPECT_EQ(sys.channelFaultsDetected(), 2u);
}

TEST(SensorIntegrity, FlatlineAndNoiseBurstsRaiseAlerts)
{
    {
        ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
        SystemConfig cfg = resilientConfig();
        cfg.faultPlan.events.push_back(
            { 25'000'000, fault::FaultKind::SensorDropout, 80, 0 });
        TwoLayerSystem sys(kernelImage(), icd::monitorProgram(),
                           heart, cfg);
        sys.runForMs(2000.0);
        ASSERT_GE(sys.sensorAlerts().size(), 1u);
        EXPECT_EQ(sys.sensorAlerts().front().kind,
                  SensorAlert::Kind::Flatline);
    }
    {
        ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
        SystemConfig cfg = resilientConfig();
        cfg.faultPlan.events.push_back(
            { 25'000'000, fault::FaultKind::SensorNoise, 100, 2000 });
        TwoLayerSystem sys(kernelImage(), icd::monitorProgram(),
                           heart, cfg);
        sys.runForMs(2000.0);
        ASSERT_GE(sys.sensorAlerts().size(), 1u);
        EXPECT_EQ(sys.sensorAlerts().front().kind,
                  SensorAlert::Kind::NoiseBurst);
    }
}

// Satellite (b), at system level: an SEU in the monitor's episode
// counter is caught by the count cross-check and repaired by a
// state replay over the diagnostic channel.
TEST(MonitorResync, MemoryFlipDetectedByCrossCheckAndRepaired)
{
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
    SystemConfig cfg = resilientConfig();
    // Flip bit 3 of data-memory word 0 — the episode count.
    cfg.faultPlan.events.push_back(
        { 30'000'000, fault::FaultKind::MbMemSeu,
          icd::kMonitorCountWord, 3 });
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart,
                       cfg);

    sys.runForMs(1000.0);
    auto count = sys.queryTreatments();
    ASSERT_TRUE(count.has_value());
    EXPECT_EQ(*count, 8); // corrupted: 0 with bit 3 flipped
    EXPECT_NE(*count, sys.persistedEpisodes());

    sys.resyncMonitor();
    sys.runForMs(5.0);
    auto repaired = sys.queryTreatments();
    ASSERT_TRUE(repaired.has_value());
    EXPECT_EQ(*repaired, sys.persistedEpisodes());
}

TEST(MonitorResync, FaultingMonitorSurfacesStructuredRecord)
{
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
    // A "monitor" that dies on a wild load: the system captures the
    // structured fault record instead of looping on a dead core.
    mblaze::MbProgram bad = mblaze::assembleMbOrDie(R"(
        movi r1, 99999999
        lw r2, r1, 0
        halt
    )");
    TwoLayerSystem sys(kernelImage(), bad, heart,
                       resilientConfig());

    sys.runForMs(10.0);
    ASSERT_TRUE(sys.monitorFault().has_value());
    EXPECT_EQ(sys.monitorFault()->cause,
              mblaze::MbFaultInfo::Cause::LoadOutOfRange);
    EXPECT_EQ(sys.monitorFault()->addr, 99999999);
    // Diagnostics are off the table with a dead monitor.
    EXPECT_FALSE(sys.queryTreatments().has_value());
}

// Satellite (d): the deadline detectors actually trip. A kernel
// slowed ~2000x via the timing model cannot meet the 5 ms tick.
TEST(Deadlines, DetectorsTripUnderArtificiallySlowKernel)
{
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
    SystemConfig cfg;
    cfg.watchdogEnabled = false; // isolate the detectors
    cfg.lambdaTiming.letBase = 5000;
    cfg.lambdaTiming.caseBase = 5000;
    cfg.lambdaTiming.whnfCheck = 5000;
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart,
                       cfg);

    sys.runForMs(150.0);
    EXPECT_TRUE(sys.deadlineMissed());
    EXPECT_GE(sys.maxTickLag(), kTickCycles);
    EXPECT_GT(sys.maxIterationCycles(), kTickCycles);
}

TEST(Deadlines, HealthyKernelTripsNothing)
{
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart,
                       resilientConfig());
    sys.runForMs(1000.0);
    EXPECT_FALSE(sys.deadlineMissed());
    EXPECT_FALSE(sys.missedDeadlineOutsideRecovery());
    EXPECT_EQ(sys.watchdogRestarts(), 0u);
    EXPECT_FALSE(sys.degraded());
    EXPECT_EQ(sys.channelOverflows(), 0u);
    EXPECT_EQ(sys.channelFaultsDetected(), 0u);
    EXPECT_EQ(sys.eccCorrectedFaults(), 0u);
    EXPECT_EQ(sys.eccUncorrectableFaults(), 0u);
    EXPECT_TRUE(sys.sensorAlerts().empty());
    EXPECT_FALSE(sys.monitorFault().has_value());
}

// Observability: watchdog episodes appear in the event trace with
// epoch-correct timestamps that match the watchdog log.
TEST(WatchdogTrace, EpisodesStampedOnTheSharedTimeline)
{
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
    SystemConfig cfg = resilientConfig();
    cfg.faultPlan.events.push_back(memFaultAt(25'000'000));
    cfg.faultPlan.events.push_back(memFaultAt(60'000'000));
    obs::TraceConfig tcfg;
    tcfg.mask = uint32_t(obs::Cat::System);
    obs::Recorder rec(tcfg);
    cfg.trace = &rec;
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart,
                       cfg);

    sys.runForMs(2000.0);
    ASSERT_EQ(sys.watchdogRestarts(), 2u);

    std::vector<obs::Event> trips, restarts;
    rec.forEach([&](const obs::Event &e) {
        if (e.kind == obs::EventKind::WatchdogTrip)
            trips.push_back(e);
        else if (e.kind == obs::EventKind::WatchdogRestart)
            restarts.push_back(e);
    });
    const auto &log = sys.watchdogLog();
    ASSERT_EQ(trips.size(), log.size());
    ASSERT_EQ(restarts.size(), log.size());
    for (size_t i = 0; i < log.size(); ++i) {
        // The trip is stamped at the λ cycle the watchdog fired.
        EXPECT_EQ(trips[i].ts, log[i].atCycle);
        EXPECT_EQ(trips[i].a, int64_t(log[i].machineStatus));
        EXPECT_EQ(trips[i].b, int64_t(i + 1));
        // The restart is stamped at the new incarnation's epoch:
        // trip cycle plus the blackout penalty.
        EXPECT_EQ(restarts[i].ts,
                  log[i].atCycle + log[i].blackoutCycles);
        EXPECT_EQ(restarts[i].a, int64_t(log[i].blackoutCycles));
        EXPECT_EQ(restarts[i].b, int64_t(i + 1));
    }
}

TEST(WatchdogTrace, DegradationEmitsAnEpochStampedEvent)
{
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
    SystemConfig cfg = resilientConfig();
    for (Cycles c : { 25'000'000, 50'000'000, 75'000'000,
                      100'000'000 })
        cfg.faultPlan.events.push_back(memFaultAt(c));
    obs::TraceConfig tcfg;
    tcfg.mask = uint32_t(obs::Cat::System);
    obs::Recorder rec(tcfg);
    cfg.trace = &rec;
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart,
                       cfg);

    sys.runForMs(3000.0);
    ASSERT_TRUE(sys.degraded());

    std::vector<obs::Event> degraded;
    rec.forEach([&](const obs::Event &e) {
        if (e.kind == obs::EventKind::Degraded)
            degraded.push_back(e);
    });
    ASSERT_EQ(degraded.size(), 1u);
    const WatchdogEvent &last = sys.watchdogLog().back();
    EXPECT_TRUE(last.degraded);
    EXPECT_EQ(degraded[0].ts, last.atCycle + last.blackoutCycles);
    EXPECT_EQ(degraded[0].a, int64_t(last.restartIndex));
}

// Counter lifecycle across restarts: lambdaStats() alone resets with
// each incarnation; the aggregated view keeps the full history, and
// the FSM tally partitions it exactly.
TEST(WatchdogTrace, AggregatedStatsSurviveRestart)
{
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
    SystemConfig cfg = resilientConfig();
    cfg.lambdaFsmTally = true;
    cfg.faultPlan.events.push_back(memFaultAt(25'000'000));
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart,
                       cfg);

    sys.runForMs(2000.0);
    ASSERT_EQ(sys.watchdogRestarts(), 1u);

    MachineStats agg = sys.aggregatedLambdaStats();
    const MachineStats &live = sys.lambdaStats();
    // Both incarnations loaded the same image, so the aggregated
    // view carries exactly twice the live machine's load cost —
    // the pre-fix code lost the first incarnation entirely.
    EXPECT_EQ(agg.loadCycles, 2 * live.loadCycles);
    EXPECT_GT(agg.execCycles, live.execCycles);
    EXPECT_GE(agg.gcRuns, live.gcRuns);

    FsmTally tally = sys.aggregatedLambdaTally();
    EXPECT_EQ(tally.loadCycles(), agg.loadCycles);
    EXPECT_EQ(tally.execCycles(), agg.execCycles);
    EXPECT_EQ(tally.gcCycles(), agg.gcCycles);
}

// Satellite (b) of the resilience PR: the watchdog's exponential
// blackout backoff is computed through watchdogBlackoutPenalty,
// which saturates at SystemConfig::maxBlackoutCycles instead of
// overflowing Cycles however many restarts have accumulated.
TEST(Watchdog, BlackoutPenaltyClampsAtTheDocumentedCeiling)
{
    const Cycles ceiling = SystemConfig{}.maxBlackoutCycles;
    ASSERT_EQ(ceiling, kLambdaHz); // one simulated second
    const Cycles base = SystemConfig{}.restartLatencyCycles;

    // Exact doubling below the ceiling.
    EXPECT_EQ(watchdogBlackoutPenalty(base, 0, ceiling), base);
    EXPECT_EQ(watchdogBlackoutPenalty(base, 1, ceiling), base * 2);
    EXPECT_EQ(watchdogBlackoutPenalty(base, 3, ceiling), base * 8);

    // Saturates exactly at the ceiling — never one cycle above.
    EXPECT_EQ(watchdogBlackoutPenalty(base, 10, ceiling), ceiling);
    EXPECT_EQ(watchdogBlackoutPenalty(base, 16, ceiling), ceiling);
    EXPECT_EQ(watchdogBlackoutPenalty(ceiling, 0, ceiling), ceiling);
    EXPECT_EQ(watchdogBlackoutPenalty(ceiling + 1, 0, ceiling),
              ceiling);

    // Arguments that would wrap a 64-bit shift saturate instead.
    EXPECT_EQ(watchdogBlackoutPenalty(1, 63, ceiling), ceiling);
    EXPECT_EQ(watchdogBlackoutPenalty(1, 64, ceiling), ceiling);
    EXPECT_EQ(watchdogBlackoutPenalty(1, 1000, ceiling), ceiling);
    EXPECT_EQ(watchdogBlackoutPenalty(~Cycles(0), 16, ceiling),
              ceiling);

    // Zero latency stays zero whatever the shift.
    EXPECT_EQ(watchdogBlackoutPenalty(0, 62, ceiling), 0u);
}

TEST(Watchdog, RepeatedRestartBlackoutsStayBounded)
{
    // End-to-end: every recorded blackout, whatever the restart
    // count that produced it, respects the configured ceiling.
    ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
    SystemConfig cfg = resilientConfig();
    cfg.watchdogMaxRestarts = 6;
    cfg.maxBlackoutCycles = kTickCycles; // a tight custom ceiling
    for (Cycles c = 25'000'000; c <= 175'000'000; c += 25'000'000)
        cfg.faultPlan.events.push_back(memFaultAt(c));
    TwoLayerSystem sys(kernelImage(), icd::monitorProgram(), heart,
                       cfg);

    sys.runForMs(5000.0);
    ASSERT_GE(sys.watchdogRestarts(), 4u);
    for (const WatchdogEvent &ev : sys.watchdogLog())
        EXPECT_LE(ev.blackoutCycles, cfg.maxBlackoutCycles);
}

TEST(Deadlines, ResilienceMachineryIsTransparentOnCleanRuns)
{
    // The empty-plan guarantee: a system with the full resilience
    // configuration produces a bit-identical pacing log and λ cycle
    // count to a plain default system.
    ecg::ScriptedHeart heartA({ { 20.0, 75.0 }, { 60.0, 190.0 } },
                              13);
    ecg::ScriptedHeart heartB({ { 20.0, 75.0 }, { 60.0, 190.0 } },
                              13);

    TwoLayerSystem plain(kernelImage(), icd::monitorProgram(),
                         heartA);
    SystemConfig cfg = resilientConfig();
    cfg.channelCapacity = 16;
    TwoLayerSystem resilient(kernelImage(), icd::monitorProgram(),
                             heartB, cfg);

    plain.runForMs(2000.0);
    resilient.runForMs(2000.0);

    EXPECT_EQ(plain.lambdaCycles(), resilient.lambdaCycles());
    ASSERT_EQ(plain.shocks().size(), resilient.shocks().size());
    for (size_t i = 0; i < plain.shocks().size(); ++i) {
        EXPECT_EQ(plain.shocks()[i].lambdaCycle,
                  resilient.shocks()[i].lambdaCycle);
        EXPECT_EQ(plain.shocks()[i].value,
                  resilient.shocks()[i].value);
    }
    EXPECT_EQ(plain.lambdaStats().gcRuns,
              resilient.lambdaStats().gcRuns);
}

} // namespace
} // namespace zarf::sys
