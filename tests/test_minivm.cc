/**
 * @file
 * Mini stack-VM tests: hand-written programs, error paths, and a
 * randomized differential campaign — random instruction sequences
 * evaluated by the Zarf interpreter (on the cycle machine) must
 * match the host reference semantics instruction for instruction.
 */

#include <gtest/gtest.h>

#include "isa/binary.hh"
#include "machine/machine.hh"
#include "sem/smallstep.hh"
#include "support/random.hh"
#include "zasm/prelude.hh"
#include "zasm/samples.hh"
#include "zasm/zasm.hh"

namespace zarf
{
namespace
{

Program
vmProgram(const std::vector<VmInstr> &instrs)
{
    return assembleOrDie(vmMainText(instrs) + miniVmText() +
                         preludeText());
}

ValuePtr
runVm(const std::vector<VmInstr> &instrs)
{
    NullBus bus;
    SmallStep ss(vmProgram(instrs), bus);
    RunResult r = ss.runMain();
    EXPECT_TRUE(r.ok()) << r.where;
    return r.value;
}

TEST(MiniVm, Arithmetic)
{
    // (3 + 4) * (10 - 4) = 42
    ValuePtr v = runVm({ { 0, 3 }, { 0, 4 }, { 1, 0 },
                         { 0, 10 }, { 0, 4 }, { 2, 0 },
                         { 3, 0 } });
    ASSERT_TRUE(v->isInt());
    EXPECT_EQ(v->intVal(), 42);
}

TEST(MiniVm, StackOps)
{
    // push 6, dup, mul -> 36; push 40, swap, sub -> 40-36 = 4; neg
    ValuePtr v = runVm({ { 0, 6 }, { 4, 0 }, { 3, 0 },
                         { 0, 40 }, { 5, 0 }, { 2, 0 },
                         { 6, 0 } });
    ASSERT_TRUE(v->isInt());
    EXPECT_EQ(v->intVal(), -4);
}

TEST(MiniVm, MaxOp)
{
    ValuePtr v = runVm({ { 0, -5 }, { 0, 42 }, { 7, 0 } });
    EXPECT_EQ(v->intVal(), 42);
}

TEST(MiniVm, UnderflowYieldsError)
{
    ValuePtr v = runVm({ { 0, 1 }, { 1, 0 } });
    ASSERT_TRUE(v->isError());
    EXPECT_EQ(v->items()[0]->intVal(), 10);
}

TEST(MiniVm, EmptyProgramYieldsError)
{
    ValuePtr v = runVm({});
    ASSERT_TRUE(v->isError());
}

TEST(MiniVm, BadOpcodeYieldsError)
{
    ValuePtr v = runVm({ { 0, 1 }, { 99, 0 } });
    ASSERT_TRUE(v->isError());
    EXPECT_EQ(v->items()[0]->intVal(), 11);
}

/** A random, underflow-free instruction sequence. */
std::vector<VmInstr>
randomVmProgram(Rng &rng, int len)
{
    std::vector<VmInstr> out;
    int depth = 0;
    for (int i = 0; i < len; ++i) {
        double r = rng.real();
        if (depth < 2 || r < 0.35) {
            out.push_back({ 0, SWord(rng.range(-50, 50)) });
            ++depth;
        } else if (r < 0.6) {
            static const SWord bins[] = { 1, 2, 3, 7 };
            out.push_back({ bins[rng.below(4)], 0 });
            --depth;
        } else if (r < 0.75) {
            out.push_back({ 4, 0 });
            ++depth;
        } else if (r < 0.9) {
            out.push_back({ 5, 0 });
        } else {
            out.push_back({ 6, 0 });
        }
    }
    return out;
}

class MiniVmDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(MiniVmDifferential, MachineMatchesReference)
{
    Rng rng(GetParam() * 104729 + 13);
    std::vector<VmInstr> instrs =
        randomVmProgram(rng, 8 + int(rng.below(40)));
    SWord want = 0;
    ASSERT_TRUE(vmReference(instrs, want));

    NullBus bus;
    Machine m(encodeProgram(vmProgram(instrs)), bus);
    Machine::Outcome o = m.run();
    ASSERT_EQ(o.status, MachineStatus::Done) << o.diagnostic;
    ASSERT_TRUE(o.value->isInt()) << o.value->toString();
    EXPECT_EQ(o.value->intVal(), want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiniVmDifferential,
                         ::testing::Range(uint64_t(0), uint64_t(60)));

TEST(MiniVm, DispatchProfileIsBranchHeavy)
{
    // The interpreter checks several pattern heads per dispatched
    // instruction — the workload style behind the paper's "~1/3 of
    // dynamic instructions are branch heads".
    Rng rng(4242);
    std::vector<VmInstr> instrs = randomVmProgram(rng, 300);
    SWord want;
    ASSERT_TRUE(vmReference(instrs, want));
    NullBus bus;
    Machine m(encodeProgram(vmProgram(instrs)), bus);
    ASSERT_EQ(m.run().status, MachineStatus::Done);
    EXPECT_GT(m.stats().branchHeadFraction(), 0.20);
}

} // namespace
} // namespace zarf
