/**
 * @file
 * Imperative-layer binary encoding tests: encode/decode round trips
 * (semantic equivalence — the overlapping rb/imm fields mean raw
 * structs normalize), IMM-prefix fusion for wide constants, branch
 * retargeting across fused words, rejection of malformed images,
 * and behavioural equivalence of the decoded ICD baseline.
 */

#include <gtest/gtest.h>

#include "icd/baseline.hh"
#include "mblaze/cpu.hh"
#include "mblaze/encoding.hh"
#include "support/random.hh"

namespace zarf::mblaze
{
namespace
{

/** Run both programs on identical rigs; compare registers/outputs. */
void
expectSameBehaviour(const MbProgram &a, const MbProgram &b,
                    const std::vector<SWord> &inputs,
                    Cycles budget = 10'000'000)
{
    ScriptBus busA, busB;
    busA.feed(0, inputs);
    busB.feed(0, inputs);
    MbCpu ca(a, busA);
    MbCpu cb(b, busB);
    ca.run(budget);
    cb.run(budget);
    EXPECT_EQ(int(ca.status()), int(cb.status()));
    EXPECT_EQ(ca.cycles(), cb.cycles());
    EXPECT_EQ(busA.log.size(), busB.log.size());
    for (size_t i = 0; i < busA.log.size() && i < busB.log.size();
         ++i) {
        EXPECT_EQ(busA.log[i].port, busB.log[i].port);
        EXPECT_EQ(busA.log[i].value, busB.log[i].value);
    }
    for (unsigned r = 0; r < kNumRegs; ++r)
        EXPECT_EQ(ca.reg(r), cb.reg(r)) << "r" << r;
}

TEST(MbEncoding, SmallProgramRoundTrip)
{
    MbProgram p = assembleMbOrDie(R"(
  movi r1, 100
  movi r2, 70000    # needs the IMM prefix
loop:
  addi r1, r1, -1
  bgt r1, r0, loop
  out r2, 5
  halt
)");
    std::vector<Word> img = encodeMb(p);
    MbDecodeResult d = decodeMb(img);
    ASSERT_TRUE(d.ok) << d.error;
    ASSERT_EQ(d.program.code.size(), p.code.size());
    expectSameBehaviour(p, d.program, {});
    // Re-encoding is byte-identical (canonical form).
    EXPECT_EQ(encodeMb(d.program), img);
}

TEST(MbEncoding, WideConstantsFuse)
{
    MbProgram p = assembleMbOrDie(
        "movi r1, 1000000\nmovi r2, -1000000\nmovi r3, 5\nhalt");
    std::vector<Word> img = encodeMb(p);
    // magic + (2+2+1+1) words.
    EXPECT_EQ(img.size(), 7u);
    MbDecodeResult d = decodeMb(img);
    ASSERT_TRUE(d.ok) << d.error;
    EXPECT_EQ(d.program.code[0].imm, 1000000);
    EXPECT_EQ(d.program.code[1].imm, -1000000);
    EXPECT_EQ(d.program.code[2].imm, 5);
}

TEST(MbEncoding, BranchOverFusedConstant)
{
    // The branch target sits after a two-word movi; the word-offset
    // translation must land on the right instruction.
    MbProgram p = assembleMbOrDie(R"(
  movi r1, 1
  beq r1, r1, past
  movi r2, 123456
past:
  movi r3, 42
  halt
)");
    MbDecodeResult d = decodeMb(encodeMb(p));
    ASSERT_TRUE(d.ok) << d.error;
    expectSameBehaviour(p, d.program, {});
    ScriptBus bus;
    MbCpu cpu(d.program, bus);
    cpu.run();
    EXPECT_EQ(cpu.reg(3), 42);
    EXPECT_EQ(cpu.reg(2), 0); // jumped over
}

TEST(MbEncoding, RejectsMalformedImages)
{
    EXPECT_FALSE(decodeMb({}).ok);
    EXPECT_FALSE(decodeMb({ 0x12345678 }).ok);
    // Trailing IMM prefix.
    MbProgram p = assembleMbOrDie("halt");
    std::vector<Word> img = encodeMb(p);
    img.push_back(Word(63) << 26);
    EXPECT_FALSE(decodeMb(img).ok);
    // Two consecutive prefixes.
    img.back() = Word(63) << 26;
    img.push_back(Word(63) << 26);
    img.push_back(0);
    EXPECT_FALSE(decodeMb(img).ok);
    // Branch into the middle of a fused constant.
    MbProgram q = assembleMbOrDie("movi r1, 123456\nhalt");
    std::vector<Word> qi = encodeMb(q);
    // Fabricate `j 1` (word offset 1 = movi's second half).
    qi.push_back((Word(Opc::J) << 26) | 1u);
    MbDecodeResult d = decodeMb(qi);
    EXPECT_FALSE(d.ok);
}

TEST(MbEncoding, IcdBaselineSurvivesRoundTrip)
{
    MbProgram p = icd::baselineIcdProgram();
    std::vector<Word> img = encodeMb(p);
    MbDecodeResult d = decodeMb(img);
    ASSERT_TRUE(d.ok) << d.error;
    ASSERT_EQ(d.program.code.size(), p.code.size());

    // Behavioural check: both process the same samples through a
    // timer-always-ready rig and emit identical outputs.
    class Rig : public IoBus
    {
      public:
        explicit Rig(int n) : left(n) {}
        SWord
        getInt(SWord port) override
        {
            if (port == 3)
                return left > 0 ? (--left, 1) : 0;
            if (port == 0)
                return SWord((left * 37) % 211 - 100);
            return 0;
        }
        void
        putInt(SWord port, SWord v) override
        {
            if (port == 2)
                outs.push_back(v);
        }
        int left;
        std::vector<SWord> outs;
    };
    Rig ra(500), rb(500);
    MbCpu ca(p, ra), cb(d.program, rb);
    ca.run(3'000'000);
    cb.run(3'000'000);
    ASSERT_EQ(ra.outs.size(), 500u);
    EXPECT_EQ(ra.outs, rb.outs);
}

TEST(MbEncoding, MonitorSurvivesRoundTrip)
{
    MbProgram p = icd::monitorProgram();
    MbDecodeResult d = decodeMb(encodeMb(p));
    ASSERT_TRUE(d.ok) << d.error;
    EXPECT_EQ(encodeMb(d.program), encodeMb(p));
}

class MbEncodingFuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(MbEncodingFuzz, RandomImagesNeverCrashDecoder)
{
    Rng rng(GetParam() * 2654435761u + 99);
    std::vector<Word> img;
    img.push_back(kMbMagic);
    size_t n = rng.below(64) + 1;
    for (size_t i = 0; i < n; ++i) {
        // Bias opcodes into the plausible range half the time.
        if (rng.chance(0.5)) {
            img.push_back((Word(rng.below(40)) << 26) |
                          (Word(rng.next()) & 0x03ffffffu));
        } else {
            img.push_back(Word(rng.next()));
        }
    }
    MbDecodeResult d = decodeMb(img);
    if (d.ok) {
        // Accepted programs must run without crashing the host.
        NullBus bus;
        MbCpu cpu(d.program, bus);
        cpu.run(100'000);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MbEncodingFuzz,
                         ::testing::Range(uint64_t(0), uint64_t(120)));

} // namespace
} // namespace zarf::mblaze
