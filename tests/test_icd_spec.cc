/**
 * @file
 * Specification-level ICD tests: QRS detection quality on synthetic
 * ECG with ground truth, VT detection, and the ATP pulse-train
 * prescription (3 × 8 pulses at 88% coupling, 20 ms decrement).
 */

#include <gtest/gtest.h>

#include "ecg/synth.hh"
#include "icd/spec.hh"

namespace zarf::icd
{
namespace
{

/** Run the spec over a scripted heart; returns outputs. */
std::vector<SWord>
runSpec(IcdSpec &spec, ecg::Heart &heart, int samples)
{
    std::vector<SWord> out;
    out.reserve(size_t(samples));
    for (int i = 0; i < samples; ++i)
        out.push_back(spec.step(heart.nextSample()));
    return out;
}

/** Fraction of true beats matched by a detection within ±60 ms. */
double
sensitivity(const std::vector<uint64_t> &truth,
            const std::vector<uint64_t> &marks, uint64_t upTo)
{
    if (truth.empty())
        return 1.0;
    int hit = 0, total = 0;
    for (uint64_t t : truth) {
        if (t > upTo || t < 100)
            continue; // skip warm-up and tail
        ++total;
        for (uint64_t m : marks) {
            // Detection lags the peak by the filter-cascade delay
            // (LPF 5 + HPF 16 + derivative + 150 ms integration
            // window): 22-46 samples in practice.
            int64_t d = int64_t(m) - int64_t(t);
            if (d >= 0 && d <= 60) {
                ++hit;
                break;
            }
        }
    }
    return total ? double(hit) / total : 1.0;
}

TEST(IcdSpec, DetectsNormalSinusBeats)
{
    ecg::ScriptedHeart heart({ { 30.0, 75.0 } }, 42);
    IcdSpec spec;
    runSpec(spec, heart, 30 * 200);
    // 30 s at 75 bpm ≈ 37 beats.
    EXPECT_GT(spec.qrsCount(), 25u);
    double sens = sensitivity(heart.rPeaks(), spec.detections(),
                              30 * 200 - 400);
    EXPECT_GT(sens, 0.90) << "QRS sensitivity too low";
    EXPECT_EQ(spec.therapyCount(), 0u)
        << "normal rhythm must not trigger therapy";
}

TEST(IcdSpec, MeasuresHeartRate)
{
    ecg::ScriptedHeart heart({ { 30.0, 100.0 } }, 7);
    IcdSpec spec;
    runSpec(spec, heart, 30 * 200);
    // RR at 100 bpm is 600 ms; allow generous tolerance.
    EXPECT_NEAR(spec.lastRrMs(), 600, 90);
    EXPECT_NEAR(spec.heartRateBpm(), 100, 15);
}

TEST(IcdSpec, NoTherapyAtModeratelyFastRates)
{
    // 140 bpm (429 ms RR) is above the 360 ms VT limit.
    ecg::ScriptedHeart heart({ { 40.0, 140.0 } }, 11);
    IcdSpec spec;
    runSpec(spec, heart, 40 * 200);
    EXPECT_GT(spec.qrsCount(), 40u);
    EXPECT_EQ(spec.therapyCount(), 0u);
}

TEST(IcdSpec, DetectsVtAndDeliversAtp)
{
    // 20 s sinus then sustained VT at 190 bpm (316 ms RR < 360 ms).
    ecg::ScriptedHeart heart({ { 20.0, 75.0 }, { 60.0, 190.0 } }, 5);
    IcdSpec spec;
    std::vector<SWord> out = runSpec(spec, heart, 80 * 200);

    ASSERT_GE(spec.therapyCount(), 1u) << "VT must trigger therapy";

    // The first therapy episode: find the 2-marker and check the
    // pulse train: 3 sequences x 8 pulses.
    size_t start = 0;
    while (start < out.size() && out[start] != kOutTherapyStart)
        ++start;
    ASSERT_LT(start, out.size());

    // Gather pulses of this episode (until a long quiet gap).
    std::vector<size_t> pulseAt;
    size_t quiet = 0;
    for (size_t i = start; i < out.size() && quiet < 300; ++i) {
        if (out[i] != kOutNone) {
            pulseAt.push_back(i);
            quiet = 0;
        } else {
            ++quiet;
        }
    }
    EXPECT_EQ(pulseAt.size(), size_t(kAtpSequences * kAtpPulses));

    // Intra-sequence spacing is constant; the spacing of sequence
    // k+1 is 4 samples (20 ms) shorter than sequence k's (until the
    // floor).
    ASSERT_GE(pulseAt.size(), 17u);
    auto gap = [&](size_t i) {
        return long(pulseAt[i + 1]) - long(pulseAt[i]);
    };
    long g0 = gap(0);
    for (int i = 1; i < kAtpPulses - 1; ++i)
        EXPECT_EQ(gap(size_t(i)), g0) << "unequal intra-burst gap";
    long g1 = gap(kAtpPulses);
    EXPECT_LE(g1, g0);
    EXPECT_GE(g1, g0 - kAtpDecrementMs / kSampleMs);

    // Coupling: the burst interval is 88% of the measured VT cycle
    // length, floored at 150 ms. VT at 190 bpm ≈ 316 ms; 88% ≈ 278
    // ms ≈ 55 samples.
    EXPECT_GT(g0, 40);
    EXPECT_LT(g0, 75);
}

TEST(IcdSpec, TherapyEndsAndDetectionRestarts)
{
    ecg::ScriptedHeart heart({ { 20.0, 75.0 }, { 120.0, 190.0 } }, 9);
    IcdSpec spec;
    runSpec(spec, heart, 140 * 200);
    // Sustained VT: after each therapy the detector re-arms and
    // fires again (needs to measure 18 fast beats again).
    EXPECT_GE(spec.therapyCount(), 2u);
    EXPECT_FALSE(spec.inTreatment() &&
                 spec.therapyCount() == 0);
}

TEST(IcdSpec, ResponsiveHeartConverts)
{
    ecg::ResponsiveHeart heart(15.0, 75.0, 190.0, 8, 3);
    IcdSpec spec;
    bool converted = false;
    for (int i = 0; i < 90 * 200; ++i) {
        SWord out = spec.step(heart.nextSample());
        heart.onShock(out);
        if (!heart.inVt() && heart.pulsesReceived() > 0)
            converted = true;
    }
    EXPECT_TRUE(converted) << "ATP should convert the VT";
    EXPECT_GE(spec.therapyCount(), 1u);
    // After conversion, no further therapy at sinus rhythm.
    EXPECT_LE(spec.therapyCount(), 3u);
}

TEST(IcdSpec, StageTraceIsConsistent)
{
    ecg::ScriptedHeart heart({ { 5.0, 75.0 } }, 21);
    IcdSpec a;
    IcdSpec b;
    for (int i = 0; i < 1000; ++i) {
        SWord x = heart.nextSample();
        StageTrace tr = a.stepTraced(x);
        EXPECT_EQ(tr.output, b.step(x));
        EXPECT_EQ(tr.input, x);
        // Clamps hold.
        EXPECT_LE(tr.squared, kSquareClamp);
        EXPECT_LE(tr.derivative, kDerivClamp);
        EXPECT_GE(tr.derivative, -kDerivClamp);
    }
}

TEST(IcdSpec, QuietSignalProducesNothing)
{
    IcdSpec spec;
    for (int i = 0; i < 5000; ++i) {
        EXPECT_EQ(spec.step(0), kOutNone);
    }
    EXPECT_EQ(spec.qrsCount(), 0u);
    EXPECT_EQ(spec.therapyCount(), 0u);
}

} // namespace
} // namespace zarf::icd
