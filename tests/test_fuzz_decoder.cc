/**
 * @file
 * Loader robustness fuzzing: the binary decoder is the system's
 * trust boundary for untrusted images, so it must never crash,
 * hang, or accept a structurally unsound program — on pure random
 * words, on random words behind a valid header, and on bit-mutated
 * valid images. Whatever it does accept must validate and must not
 * crash any execution engine.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "fuzz/genprog.hh"
#include "fuzz/mutate.hh"
#include "common/testprogs.hh"
#include "isa/binary.hh"
#include "isa/encoding.hh"
#include "isa/validate.hh"
#include "machine/machine.hh"
#include "sem/smallstep.hh"
#include "support/random.hh"
#include "zasm/zasm.hh"

namespace zarf
{
namespace
{

/** Anything the decoder accepts must be safe to validate and run
 *  (bounded); engines may report errors but must not crash. */
void
exerciseAccepted(const Program &prog)
{
    // Scope-invalid programs are still exercised: both engines
    // detect out-of-range references dynamically and stop, so a
    // validation failure must not be a precondition for safety.
    (void)validateProgram(prog);
    NullBus bus;
    SmallStepConfig scfg;
    scfg.maxSteps = 200'000;
    SmallStep ss(prog, bus, scfg);
    (void)ss.runMain(); // any status is acceptable

    // The decoder's fields are wider than the encoder's caps (e.g.
    // a 16-bit arity against kMaxArity), so a decoded mutant is not
    // necessarily re-encodable; encodeProgram dies on overflow.
    if (!fuzz::canEncode(prog))
        return;
    MachineConfig mcfg;
    mcfg.semispaceWords = 1 << 13;
    Machine m(encodeProgram(prog), bus, mcfg);
    (void)m.advance(500'000);
}

/** The machine is itself a loader of raw images; it must reject or
 *  stop on anything, never crash the host. */
void
exerciseMachineRaw(const Image &img)
{
    NullBus bus;
    MachineConfig mcfg;
    mcfg.semispaceWords = 1 << 13;
    Machine m(img, bus, mcfg);
    (void)m.advance(300'000);
}

class FuzzRandomWords : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FuzzRandomWords, NeverCrashes)
{
    Rng rng(GetParam() * 1000003 + 17);
    Image img(rng.below(64) + 2);
    for (Word &w : img)
        w = Word(rng.next());
    DecodeResult d = decodeProgram(img);
    if (d.ok)
        exerciseAccepted(d.program);
    img[0] = kMagic; // push deeper into the machine's loader too
    exerciseMachineRaw(img);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRandomWords,
                         ::testing::Range(uint64_t(0), uint64_t(150)));

class FuzzHeaderedWords : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FuzzHeaderedWords, NeverCrashes)
{
    Rng rng(GetParam() * 7777777 + 3);
    Image img;
    img.push_back(kMagic);
    img.push_back(Word(rng.below(4) + 1));
    size_t body = rng.below(96) + 2;
    for (size_t i = 0; i < body; ++i) {
        // Bias toward plausible opcodes so decoding goes deeper.
        Word op = Word(rng.below(10)) << 28;
        img.push_back(op | (Word(rng.next()) & 0x0fffffffu));
    }
    DecodeResult d = decodeProgram(img);
    if (d.ok)
        exerciseAccepted(d.program);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzHeaderedWords,
                         ::testing::Range(uint64_t(0), uint64_t(300)));

class FuzzMutations : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FuzzMutations, MutatedValidImagesHandled)
{
    // Start from a real program; flip bits and re-decode.
    fuzz::ProgramGenerator gen(GetParam() * 31 + 7);
    BuildResult b = gen.generate().tryBuild();
    ASSERT_TRUE(b.ok);
    Image img = encodeProgram(b.program);

    Rng rng(GetParam() * 65537 + 29);
    for (int trial = 0; trial < 20; ++trial) {
        Image mut = img;
        int flips = 1 + int(rng.below(4));
        for (int f = 0; f < flips; ++f) {
            size_t at = rng.below(mut.size());
            mut[size_t(at)] ^= Word(1) << rng.below(32);
        }
        DecodeResult d = decodeProgram(mut);
        if (d.ok)
            exerciseAccepted(d.program);
        exerciseMachineRaw(mut);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzMutations,
                         ::testing::Range(uint64_t(0), uint64_t(60)));

/** Run the raw image through the machine loader on both execution
 *  paths; each must reject at load or latch a runtime error. */
void
exerciseBothMachinePaths(const Image &img)
{
    NullBus bus;
    for (bool predecode : { false, true }) {
        MachineConfig mcfg;
        mcfg.semispaceWords = 1 << 13;
        mcfg.usePredecode = predecode;
        Machine m(img, bus, mcfg);
        // Any status is acceptable; a crash would have killed us.
        (void)m.advance(300'000);
    }
}

/** A freshly generated, known-good image plus its declaration spans
 *  (offset of each decl's info word and one-past its body). */
struct SpannedImage
{
    Image img;
    std::vector<std::pair<size_t, size_t>> spans;
};

SpannedImage
generateSpanned(uint64_t seed)
{
    fuzz::ProgramGenerator gen(seed);
    BuildResult b = gen.generate().tryBuild();
    EXPECT_TRUE(b.ok);
    SpannedImage s;
    s.img = encodeProgram(b.program);
    size_t pos = 2;
    for (Word i = 0; i < s.img[1] && pos + 2 <= s.img.size(); ++i) {
        size_t len = s.img[pos + 1];
        s.spans.push_back({ pos, pos + 2 + len });
        pos += 2 + len;
    }
    return s;
}

class FuzzStructured : public ::testing::TestWithParam<uint64_t>
{};

/** Library-level structure-aware mutants: whatever mutateImage
 *  produces, the loader rejects it or the engines stop cleanly. */
TEST_P(FuzzStructured, MutateImageNeverCrashes)
{
    SpannedImage s = generateSpanned(GetParam() * 131 + 5);
    Rng rng(GetParam() * 2654435761u + 11);
    for (int trial = 0; trial < 16; ++trial) {
        Image mut = fuzz::mutateImage(s.img, rng);
        DecodeResult d = decodeProgram(mut);
        if (d.ok)
            exerciseAccepted(d.program);
        exerciseBothMachinePaths(mut);
    }
}

/** Corrupted pattern-skip fields: every PAT_LIT/PAT_CONS word gets
 *  its skip field replaced with hostile values. */
TEST_P(FuzzStructured, CorruptedSkipFields)
{
    SpannedImage s = generateSpanned(GetParam() * 977 + 13);
    for (Word skip : { Word(0), Word(1), kMaxSkip, kMaxSkip / 2 }) {
        Image mut = s.img;
        bool touched = false;
        for (auto [lo, hi] : s.spans) {
            for (size_t w = lo + 2; w < hi; ++w) {
                Op op = opOf(mut[w]);
                if (op != Op::PatLit && op != Op::PatCons)
                    continue;
                mut[w] = (mut[w] & ~(Word(0xfff) << 16)) |
                         (skip << 16);
                touched = true;
            }
        }
        if (!touched)
            continue;
        DecodeResult d = decodeProgram(mut);
        if (d.ok)
            exerciseAccepted(d.program);
        exerciseBothMachinePaths(mut);
    }
}

/** Truncated argument lists: a LET head that promises more argument
 *  words than its body holds must be rejected by the decoder, and the
 *  machine loader must reject or latch — never read past the body. */
TEST_P(FuzzStructured, TruncatedArgLists)
{
    SpannedImage s = generateSpanned(GetParam() * 409 + 1);
    for (auto [lo, hi] : s.spans) {
        for (size_t w = lo + 2; w < hi; ++w) {
            if (opOf(s.img[w]) != Op::Let)
                continue;
            LetWord let = unpackLet(s.img[w]);
            for (Word extra : { Word(1), Word(16), kMaxArgs }) {
                Word nargs = std::min(let.nargs + extra, kMaxArgs);
                if (nargs == let.nargs)
                    continue;
                Image mut = s.img;
                mut[w] = (mut[w] & ~(Word(0x3ff) << 16)) |
                         (nargs << 16);
                DecodeResult d = decodeProgram(mut);
                if (d.ok)
                    exerciseAccepted(d.program);
                exerciseBothMachinePaths(mut);
            }
        }
    }
}

/** Reserved operand-source bits ([27:26] = 3 on ARG/CASE/RESULT
 *  words): the predecode loader must refuse the image at load time —
 *  it must not be Running after load — and the word-walk path must
 *  reject or latch a runtime error. */
TEST_P(FuzzStructured, ReservedSrcBits)
{
    SpannedImage s = generateSpanned(GetParam() * 613 + 9);
    size_t tried = 0;
    for (auto [lo, hi] : s.spans) {
        for (size_t w = lo + 2; w < hi && tried < 8; ++w) {
            Op op = opOf(s.img[w]);
            if (op != Op::Arg && op != Op::Case && op != Op::Result)
                continue;
            ++tried;
            Image mut = s.img;
            mut[w] |= Word(3) << 26;
            DecodeResult d = decodeProgram(mut);
            if (d.ok)
                exerciseAccepted(d.program);

            NullBus bus;
            MachineConfig mcfg;
            mcfg.semispaceWords = 1 << 13;
            mcfg.usePredecode = true;
            Machine pm(mut, bus, mcfg);
            MachineStatus ps = pm.advance(300'000);
            EXPECT_NE(ps, MachineStatus::Running)
                << "predecode accepted reserved source bits";
            EXPECT_NE(ps, MachineStatus::Done)
                << "predecode executed reserved source bits";

            mcfg.usePredecode = false;
            Machine wm(mut, bus, mcfg);
            (void)wm.advance(300'000); // reject-or-latch, no UB
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzStructured,
                         ::testing::Range(uint64_t(0), uint64_t(40)));

TEST(FuzzDecoder, TruncationSweep)
{
    // Every prefix of a valid image is either rejected or safe.
    Program p = assembleOrDie(testing::mapProgramText());
    Image img = encodeProgram(p);
    for (size_t n = 0; n <= img.size(); ++n) {
        Image cut(img.begin(), img.begin() + ptrdiff_t(n));
        DecodeResult d = decodeProgram(cut);
        if (d.ok)
            exerciseAccepted(d.program);
    }
}

} // namespace
} // namespace zarf
