/**
 * @file
 * Loader robustness fuzzing: the binary decoder is the system's
 * trust boundary for untrusted images, so it must never crash,
 * hang, or accept a structurally unsound program — on pure random
 * words, on random words behind a valid header, and on bit-mutated
 * valid images. Whatever it does accept must validate and must not
 * crash any execution engine.
 */

#include <gtest/gtest.h>

#include "common/genprog.hh"
#include "common/testprogs.hh"
#include "isa/binary.hh"
#include "isa/encoding.hh"
#include "isa/validate.hh"
#include "machine/machine.hh"
#include "sem/smallstep.hh"
#include "support/random.hh"
#include "zasm/zasm.hh"

namespace zarf
{
namespace
{

/** Anything the decoder accepts must be safe to validate and run
 *  (bounded); engines may report errors but must not crash. */
void
exerciseAccepted(const Program &prog)
{
    ValidationReport vr = validateProgram(prog);
    if (!vr.ok())
        return; // decoder-accepted but scope-invalid: fine, rejected
    NullBus bus;
    SmallStepConfig scfg;
    scfg.maxSteps = 200'000;
    SmallStep ss(prog, bus, scfg);
    (void)ss.runMain(); // any status is acceptable

    MachineConfig mcfg;
    mcfg.semispaceWords = 1 << 13;
    Machine m(encodeProgram(prog), bus, mcfg);
    (void)m.advance(500'000);
}

/** The machine is itself a loader of raw images; it must reject or
 *  stop on anything, never crash the host. */
void
exerciseMachineRaw(const Image &img)
{
    NullBus bus;
    MachineConfig mcfg;
    mcfg.semispaceWords = 1 << 13;
    Machine m(img, bus, mcfg);
    (void)m.advance(300'000);
}

class FuzzRandomWords : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FuzzRandomWords, NeverCrashes)
{
    Rng rng(GetParam() * 1000003 + 17);
    Image img(rng.below(64) + 2);
    for (Word &w : img)
        w = Word(rng.next());
    DecodeResult d = decodeProgram(img);
    if (d.ok)
        exerciseAccepted(d.program);
    img[0] = kMagic; // push deeper into the machine's loader too
    exerciseMachineRaw(img);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRandomWords,
                         ::testing::Range(uint64_t(0), uint64_t(150)));

class FuzzHeaderedWords : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FuzzHeaderedWords, NeverCrashes)
{
    Rng rng(GetParam() * 7777777 + 3);
    Image img;
    img.push_back(kMagic);
    img.push_back(Word(rng.below(4) + 1));
    size_t body = rng.below(96) + 2;
    for (size_t i = 0; i < body; ++i) {
        // Bias toward plausible opcodes so decoding goes deeper.
        Word op = Word(rng.below(10)) << 28;
        img.push_back(op | (Word(rng.next()) & 0x0fffffffu));
    }
    DecodeResult d = decodeProgram(img);
    if (d.ok)
        exerciseAccepted(d.program);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzHeaderedWords,
                         ::testing::Range(uint64_t(0), uint64_t(300)));

class FuzzMutations : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(FuzzMutations, MutatedValidImagesHandled)
{
    // Start from a real program; flip bits and re-decode.
    testing::ProgramGenerator gen(GetParam() * 31 + 7);
    BuildResult b = gen.generate().tryBuild();
    ASSERT_TRUE(b.ok);
    Image img = encodeProgram(b.program);

    Rng rng(GetParam() * 65537 + 29);
    for (int trial = 0; trial < 20; ++trial) {
        Image mut = img;
        int flips = 1 + int(rng.below(4));
        for (int f = 0; f < flips; ++f) {
            size_t at = rng.below(mut.size());
            mut[size_t(at)] ^= Word(1) << rng.below(32);
        }
        DecodeResult d = decodeProgram(mut);
        if (d.ok)
            exerciseAccepted(d.program);
        exerciseMachineRaw(mut);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzMutations,
                         ::testing::Range(uint64_t(0), uint64_t(60)));

TEST(FuzzDecoder, TruncationSweep)
{
    // Every prefix of a valid image is either rejected or safe.
    Program p = assembleOrDie(testing::mapProgramText());
    Image img = encodeProgram(p);
    for (size_t n = 0; n <= img.size(); ++n) {
        Image cut(img.begin(), img.begin() + ptrdiff_t(n));
        DecodeResult d = decodeProgram(cut);
        if (d.ok)
            exerciseAccepted(d.program);
    }
}

} // namespace
} // namespace zarf
