/**
 * @file
 * Small-step (lazy) semantics tests: the same observable behaviour
 * as the big-step oracle on shared programs, plus the properties
 * only a lazy engine has — unevaluated bindings cost nothing, tail
 * recursion runs in constant continuation depth, and thunks are
 * forced at most once.
 */

#include <gtest/gtest.h>

#include "common/testprogs.hh"
#include "sem/smallstep.hh"
#include "zasm/zasm.hh"

namespace zarf
{
namespace
{

ValuePtr
runMain(const std::string &text, IoBus &bus,
        SmallStepStats *stats = nullptr)
{
    Program p = assembleOrDie(text);
    SmallStep ss(p, bus);
    RunResult r = ss.runMain();
    EXPECT_TRUE(r.ok()) << "status " << int(r.status) << " "
                        << r.where;
    if (stats)
        *stats = ss.stats();
    return r.value;
}

SWord
intMain(const std::string &text)
{
    NullBus bus;
    ValuePtr v = runMain(text, bus);
    EXPECT_TRUE(v && v->isInt());
    return v ? v->intVal() : 0;
}

TEST(SmallStep, BasicPrograms)
{
    EXPECT_EQ(intMain("fun main = result 7"), 7);
    EXPECT_EQ(intMain("fun main = let x = add 2 3\n result x"), 5);
    EXPECT_EQ(intMain(testing::mapProgramText()), 9);
    EXPECT_EQ(intMain(testing::churchProgramText()), 256);
}

TEST(SmallStep, CountdownLoopCompletes)
{
    // 100k-iteration tail loop: must complete without exhausting
    // host stack or continuation stack.
    EXPECT_EQ(intMain(testing::countdownProgramText()), 42);
}

TEST(SmallStep, LazyUnusedBindingNotEvaluated)
{
    // The binding spins forever if forced; laziness must skip it.
    EXPECT_EQ(intMain(R"(
fun main =
  let boom = spin 1
  result 5
fun spin n =
  let m = spin n
  result m
)"),
              5);
}

TEST(SmallStep, LazyUnusedIoNotPerformed)
{
    ScriptBus bus;
    ValuePtr v = runMain(R"(
fun main =
  let unused = putint 1 99
  result 3
)",
                         bus);
    EXPECT_EQ(v->intVal(), 3);
    // The putint was never demanded, so nothing was written.
    EXPECT_TRUE(bus.written(1).empty());
}

TEST(SmallStep, SelfDependentThunkIsStuck)
{
    // A thunk that forces itself is the black-hole case.
    Program p = assembleOrDie(R"(
fun main =
  let x = spin 0
  result x
fun spin n =
  let m = spin n
  result m
)");
    NullBus bus;
    SmallStepConfig cfg;
    cfg.maxSteps = 100000;
    SmallStep ss(p, bus, cfg);
    RunResult r = ss.runMain();
    // Tail recursion through indirections: this loop never reaches
    // WHNF, so it burns fuel rather than overflowing anything.
    EXPECT_EQ(r.status, RunResult::Status::OutOfFuel);
}

TEST(SmallStep, ThunksForcedAtMostOnce)
{
    // `shared` is used three times; update-in-place must make the
    // second and third uses free. We observe this through the I/O
    // side effect: the putint inside must happen exactly once.
    ScriptBus bus;
    ValuePtr v = runMain(R"(
fun main =
  let shared = putint 2 11
  let a = add shared shared
  let b = add a shared
  result b
)",
                         bus);
    EXPECT_EQ(v->intVal(), 33);
    EXPECT_EQ(bus.written(2).size(), 1u);
}

TEST(SmallStep, IoEchoOrdering)
{
    ScriptBus bus;
    bus.feed(0, { 5, 7, 9, 11, 13 });
    runMain(testing::ioEchoProgramText(), bus);
    EXPECT_EQ(bus.written(1),
              (std::vector<SWord>{ 15, 17, 19, 21, 23 }));
}

TEST(SmallStep, PartialApplicationDeepValue)
{
    NullBus bus;
    ValuePtr v = runMain(R"(
fun main =
  let f = add3 1 2
  result f
fun add3 a b c =
  let x = add a b
  let y = add x c
  result y
)",
                         bus);
    ASSERT_TRUE(v->isClosure());
    EXPECT_EQ(v->items().size(), 2u);
    EXPECT_EQ(v->items()[0]->intVal(), 1);
}

TEST(SmallStep, ErrorPaths)
{
    NullBus bus;
    ValuePtr v = runMain(
        "fun main = let x = div 4 0\n result x", bus);
    ASSERT_TRUE(v->isError());
    EXPECT_EQ(v->items()[0]->intVal(), kErrDivZero);

    v = runMain(R"(
con Box x
fun main =
  let b = Box 1
  let y = b 2
  result y
)",
                bus);
    ASSERT_TRUE(v->isError());
    EXPECT_EQ(v->items()[0]->intVal(), kErrArity);
}

TEST(SmallStep, HigherOrderThroughThunkCallee)
{
    // The callee is an unevaluated thunk that computes a closure.
    EXPECT_EQ(intMain(R"(
fun main =
  let f = pick 1
  let x = f 40
  result x
fun pick n =
  case n of
    0 =>
      let g = adder 1
      result g
  else
    let g = adder 2
    result g
fun adder a b =
  let s = add a b
  result s
)"),
              42);
}

TEST(SmallStep, DirectCallWithConsArgs)
{
    Program p = assembleOrDie(testing::mapProgramText());
    NullBus bus;
    SmallStep ss(p, bus);
    // sumList (Cons 4 (Cons 5 Nil)) == 9
    int nil = p.findByName("Nil");
    int cons = p.findByName("Cons");
    ASSERT_GE(nil, 0);
    ASSERT_GE(cons, 0);
    ValuePtr list = Value::makeCons(
        Program::idOf(size_t(cons)),
        { Value::makeInt(4),
          Value::makeCons(Program::idOf(size_t(cons)),
                          { Value::makeInt(5),
                            Value::makeCons(
                                Program::idOf(size_t(nil)), {}) }) });
    RunResult r = ss.call("sumList", { list });
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value->intVal(), 9);
}

TEST(SmallStep, StatsAreCounted)
{
    SmallStepStats stats;
    NullBus bus;
    runMain(testing::mapProgramText(), bus, &stats);
    EXPECT_GT(stats.lets, 0u);
    EXPECT_GT(stats.cases, 0u);
    EXPECT_GT(stats.results, 0u);
    EXPECT_GT(stats.allocations, 0u);
    EXPECT_GT(stats.updates, 0u);
}

} // namespace
} // namespace zarf
