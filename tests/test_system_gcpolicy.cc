/**
 * @file
 * Two-layer system under alternative GC policies (the Sec. 5.2
 * ablation): the kernel variant without the per-iteration collector
 * call must still behave identically (outputs are untouched by GC
 * placement) and still meet deadlines when the machine's
 * exhaustion/interval policies carry the collection load.
 */

#include <gtest/gtest.h>

#include "icd/baseline.hh"
#include "icd/spec.hh"
#include "icd/zarf_icd.hh"
#include "system/system.hh"

namespace zarf::sys
{
namespace
{

TEST(SystemGcPolicy, NoExplicitGcKernelStillMeetsDeadlines)
{
    ecg::ScriptedHeart heart({ { 60.0, 75.0 } }, 11);
    SystemConfig cfg;
    cfg.semispaceWords = 1u << 16;
    TwoLayerSystem sys(icd::buildKernelImage(false),
                       icd::monitorProgram(), heart, cfg);
    MachineStatus st = sys.runForMs(5000.0);
    EXPECT_EQ(st, MachineStatus::Running);
    EXPECT_FALSE(sys.deadlineMissed());
    EXPECT_NEAR(double(sys.samplesRead()), 1000.0, 3.0);
    // Collection happened on exhaustion only — note the idle
    // timer-polling loop allocates too, so exhaustion still fires
    // regularly, just less than once per iteration.
    const MachineStats &s = sys.lambdaStats();
    EXPECT_GT(s.gcRuns, 0u);
    EXPECT_LT(s.gcRuns, sys.samplesRead());
}

TEST(SystemGcPolicy, OutputsIdenticalAcrossGcPolicies)
{
    // The same heart seed through both kernel variants: every comm
    // word (ICD output) must be identical — GC placement must be
    // semantically invisible.
    ecg::ScriptedHeart ha({ { 10.0, 75.0 }, { 30.0, 190.0 } }, 13);
    ecg::ScriptedHeart hb({ { 10.0, 75.0 }, { 30.0, 190.0 } }, 13);

    TwoLayerSystem sysA(icd::buildKernelImage(true),
                        icd::monitorProgram(), ha);
    SystemConfig cfg;
    cfg.semispaceWords = 1u << 16;
    TwoLayerSystem sysB(icd::buildKernelImage(false),
                        icd::monitorProgram(), hb, cfg);
    sysA.runForMs(20000.0);
    sysB.runForMs(20000.0);

    // Compare via the pacing log (shock[k] = out[k-1]).
    const auto &la = sysA.shocks();
    const auto &lb = sysB.shocks();
    size_t n = std::min(la.size(), lb.size());
    ASSERT_GT(n, 3500u);
    for (size_t i = 0; i < n; ++i)
        ASSERT_EQ(la[i].value, lb[i].value) << "at tick " << i;
}

TEST(SystemGcPolicy, IntervalPolicyInSystem)
{
    // Interval collection every half tick keeps pauses frequent and
    // small without the kernel's explicit call.
    ecg::ScriptedHeart heart({ { 30.0, 75.0 } }, 17);
    // Note: TwoLayerSystem fixes its own MachineConfig; drive the
    // machine directly for this policy check.
    class Rig : public IoBus
    {
      public:
        explicit Rig(ecg::Heart &h) : heart(h) {}
        SWord
        getInt(SWord port) override
        {
            if (port == kPortTimer)
                return 1;
            if (port == kPortEcgIn)
                return heart.nextSample();
            return 0;
        }
        void
        putInt(SWord port, SWord) override
        {
            if (port == kPortCommOut)
                ++iters;
        }
        ecg::Heart &heart;
        uint64_t iters = 0;
    };
    Rig rig(heart);
    MachineConfig mcfg;
    mcfg.semispaceWords = 1u << 16;
    mcfg.gcIntervalCycles = 125'000;
    Machine m(icd::buildKernelImage(false), rig, mcfg);
    while (rig.iters < 1000 &&
           m.advance(1'000'000) == MachineStatus::Running) {}
    ASSERT_GE(rig.iters, 1000u);
    const MachineStats &s = m.stats();
    EXPECT_GT(s.gcRuns, 10u);
    // Pauses bounded by the (small) live set.
    EXPECT_LT(s.gcMaxPauseCycles, 20000u);
}

} // namespace
} // namespace zarf::sys
