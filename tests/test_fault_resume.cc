/**
 * @file
 * Crash-safe campaign checkpoint/resume (docs/RESILIENCE.md,
 * "Harness resilience"): a fault campaign journals every completed
 * scenario verdict, a killed campaign resumed from that journal
 * produces a byte-identical report on any thread count, a journal
 * from a different campaign configuration is ignored, and scenarios
 * that trip a deterministic budget are quarantined with a structured
 * verdict while the campaign completes.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fault/campaign.hh"
#include "verify/journal.hh"
#include "verify/quarantine.hh"

namespace zarf::fault
{
namespace
{

namespace fs = std::filesystem;

fs::path
scratchDir(const char *name)
{
    fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

/** Small but kind-diverse campaign — fast enough to run several
 *  times per test. */
CampaignConfig
smallCampaign(uint64_t seedBase)
{
    CampaignConfig cfg;
    cfg.scenarios = 12;
    cfg.seedBase = seedBase;
    cfg.threads = 2;
    return cfg;
}

/** Re-create `path` holding only the first `keep` records of the
 *  journal at `from` — the on-disk state of a campaign that was
 *  SIGKILLed after completing `keep - 1` scenarios (record 0 is the
 *  fingerprint). */
void
truncateJournal(const std::string &from, const std::string &path,
                size_t keep)
{
    verify::JournalRead rd = verify::readJournal(from);
    ASSERT_TRUE(rd.ok) << rd.error;
    ASSERT_GE(rd.records.size(), keep);
    verify::JournalWriter w(path,
                            verify::JournalWriter::Mode::Truncate);
    ASSERT_TRUE(w.ok());
    for (size_t i = 0; i < keep; ++i)
        ASSERT_TRUE(w.append(rd.records[i]));
}

TEST(ScenarioRecord, CodecRoundTripsEveryField)
{
    ScenarioResult r;
    r.index = 17;
    r.seed = 0xfeedface12345678ull;
    r.kind = FaultKind::LambdaWedge;
    r.vtFlavor = true;
    r.protectedMemory = false;
    r.outcome = Outcome::DetectedRecovered;
    r.outputMatchesGolden = false;
    r.detected = true;
    r.restarts = 2;
    r.degraded = true;
    r.lambdaDown = false;
    r.monitorFaulted = true;
    r.countMismatch = true;
    r.resyncRepaired = true;
    r.missedDeadline = false;
    r.eccCorrected = 3;
    r.eccUncorrectable = 1;
    r.chanOverflows = 40;
    r.chanFaults = 2;
    r.sensorAlerts = 5;
    r.episodes = -7;
    r.shockEvents = 9;
    r.budgetTrip = 1;
    r.attempts = 4;
    r.quarantined = true;

    std::string rec = encodeScenarioRecord(r);
    ScenarioResult d;
    ASSERT_TRUE(decodeScenarioRecord(rec, d));
    EXPECT_EQ(d.index, r.index);
    EXPECT_EQ(d.seed, r.seed);
    EXPECT_EQ(d.kind, r.kind);
    EXPECT_EQ(d.vtFlavor, r.vtFlavor);
    EXPECT_EQ(d.protectedMemory, r.protectedMemory);
    EXPECT_EQ(d.outcome, r.outcome);
    EXPECT_EQ(d.outputMatchesGolden, r.outputMatchesGolden);
    EXPECT_EQ(d.detected, r.detected);
    EXPECT_EQ(d.restarts, r.restarts);
    EXPECT_EQ(d.degraded, r.degraded);
    EXPECT_EQ(d.lambdaDown, r.lambdaDown);
    EXPECT_EQ(d.monitorFaulted, r.monitorFaulted);
    EXPECT_EQ(d.countMismatch, r.countMismatch);
    EXPECT_EQ(d.resyncRepaired, r.resyncRepaired);
    EXPECT_EQ(d.missedDeadline, r.missedDeadline);
    EXPECT_EQ(d.eccCorrected, r.eccCorrected);
    EXPECT_EQ(d.eccUncorrectable, r.eccUncorrectable);
    EXPECT_EQ(d.chanOverflows, r.chanOverflows);
    EXPECT_EQ(d.chanFaults, r.chanFaults);
    EXPECT_EQ(d.sensorAlerts, r.sensorAlerts);
    EXPECT_EQ(d.episodes, r.episodes);
    EXPECT_EQ(d.shockEvents, r.shockEvents);
    EXPECT_EQ(d.budgetTrip, r.budgetTrip);
    EXPECT_EQ(d.attempts, r.attempts);
    EXPECT_EQ(d.quarantined, r.quarantined);
}

TEST(ScenarioRecord, DecoderRejectsMalformedRecords)
{
    ScenarioResult r;
    std::string rec = encodeScenarioRecord(r);
    ScenarioResult out;
    // Wrong size.
    EXPECT_FALSE(decodeScenarioRecord(rec.substr(1), out));
    EXPECT_FALSE(decodeScenarioRecord(rec + "x", out));
    EXPECT_FALSE(decodeScenarioRecord("", out));
    // Wrong version (field 0).
    std::string bad = rec;
    bad[0] = char(0x7f);
    EXPECT_FALSE(decodeScenarioRecord(bad, out));
}

TEST(CampaignFingerprint, BindsTheConfigThatShapesTheReport)
{
    CampaignConfig a = smallCampaign(7);
    CampaignConfig b = a;
    EXPECT_EQ(campaignFingerprint(a), campaignFingerprint(b));
    // Execution-only knobs don't change the identity.
    b.threads = 16;
    b.strategy = LoadStrategy::Cold;
    EXPECT_EQ(campaignFingerprint(a), campaignFingerprint(b));
    // Report-shaping knobs do.
    b = a;
    b.seedBase = 8;
    EXPECT_NE(campaignFingerprint(a), campaignFingerprint(b));
    b = a;
    b.scenarios = 13;
    EXPECT_NE(campaignFingerprint(a), campaignFingerprint(b));
    b = a;
    b.vtSeconds = a.vtSeconds + 1.0;
    EXPECT_NE(campaignFingerprint(a), campaignFingerprint(b));
}

TEST(CampaignResume, KilledCampaignResumesByteIdentical)
{
    fs::path dir = scratchDir("campaign-resume");
    CampaignConfig base = smallCampaign(7);

    // The uninterrupted reference, no journaling at all.
    CampaignReport full = runCampaign(base);
    std::string fullJson = full.toJson();
    std::string fullMetrics = full.metricsJson();

    // A journaled run to completion gives us the record stream a
    // killed run would have left behind.
    CampaignConfig jcfg = base;
    jcfg.journalPath = (dir / "complete.bin").string();
    CampaignReport journaled = runCampaign(jcfg);
    EXPECT_EQ(journaled.toJson(), fullJson);
    verify::JournalRead rd = verify::readJournal(jcfg.journalPath);
    ASSERT_TRUE(rd.ok);
    // Fingerprint + one record per scenario.
    ASSERT_EQ(rd.records.size(), base.scenarios + 1);
    EXPECT_EQ(rd.records[0], campaignFingerprint(base));

    // Simulate SIGKILL after 5 completed scenarios, then resume on
    // several thread counts: every resumed report must be
    // byte-identical to the uninterrupted one.
    for (unsigned threads : { 1u, 4u }) {
        std::string killed =
            (dir / ("killed-" + std::to_string(threads) + ".bin"))
                .string();
        truncateJournal(jcfg.journalPath, killed, 1 + 5);

        CampaignConfig rcfg = base;
        rcfg.threads = threads;
        rcfg.journalPath = killed;
        rcfg.resumePath = killed;
        CampaignReport resumed = runCampaign(rcfg);
        EXPECT_EQ(resumed.resumedFromJournal, 5u);
        EXPECT_EQ(resumed.toJson(), fullJson) << threads;
        EXPECT_EQ(resumed.metricsJson(), fullMetrics) << threads;

        // The journal was completed in place: resuming again adopts
        // every scenario and re-runs nothing.
        CampaignReport again = runCampaign(rcfg);
        EXPECT_EQ(again.resumedFromJournal, base.scenarios);
        EXPECT_EQ(again.toJson(), fullJson) << threads;
    }
}

TEST(CampaignResume, TornJournalTailIsDiscarded)
{
    fs::path dir = scratchDir("campaign-torn");
    CampaignConfig base = smallCampaign(11);
    base.scenarios = 8;

    CampaignConfig jcfg = base;
    jcfg.journalPath = (dir / "j.bin").string();
    CampaignReport full = runCampaign(jcfg);
    std::string fullJson = full.toJson();

    // A kill mid-append leaves a torn frame at the tail.
    std::string killed = (dir / "torn.bin").string();
    truncateJournal(jcfg.journalPath, killed, 1 + 3);
    {
        std::ofstream out(killed,
                          std::ios::binary | std::ios::app);
        out.write("\x80\x00\x00\x00\x01\x02", 6);
    }

    CampaignConfig rcfg = base;
    rcfg.journalPath = killed;
    rcfg.resumePath = killed;
    CampaignReport resumed = runCampaign(rcfg);
    EXPECT_EQ(resumed.resumedFromJournal, 3u);
    EXPECT_EQ(resumed.toJson(), fullJson);
}

TEST(CampaignResume, ForeignFingerprintIsIgnored)
{
    fs::path dir = scratchDir("campaign-foreign");

    CampaignConfig other = smallCampaign(7);
    other.scenarios = 8;
    CampaignConfig ocfg = other;
    ocfg.journalPath = (dir / "other.bin").string();
    runCampaign(ocfg);

    // Resume a *different* campaign from that journal: the verdicts
    // must not be adopted, and the report must equal a fresh run.
    CampaignConfig mine = smallCampaign(9);
    mine.scenarios = 8;
    CampaignReport fresh = runCampaign(mine);

    CampaignConfig rcfg = mine;
    rcfg.journalPath = (dir / "mine.bin").string();
    rcfg.resumePath = ocfg.journalPath;
    CampaignReport resumed = runCampaign(rcfg);
    EXPECT_EQ(resumed.resumedFromJournal, 0u);
    EXPECT_EQ(resumed.toJson(), fresh.toJson());

    // And the fresh journal it wrote carries *its* fingerprint.
    verify::JournalRead rd = verify::readJournal(rcfg.journalPath);
    ASSERT_TRUE(rd.ok);
    ASSERT_GE(rd.records.size(), 1u);
    EXPECT_EQ(rd.records[0], campaignFingerprint(mine));
}

TEST(CampaignBudget, WedgedScenariosAreQuarantinedAndTheRestFinish)
{
    fs::path dir = scratchDir("campaign-quarantine");
    CampaignConfig cfg = smallCampaign(5);
    cfg.scenarios = 8;
    // Far below what any scenario needs (sinus scenarios simulate
    // 2 s = 100M λ cycles): every scenario trips deterministically.
    cfg.scenarioBudget.maxLambdaCycles = 2'000'000;
    cfg.quarantineDir = (dir / "quarantine").string();

    CampaignReport report = runCampaign(cfg);
    ASSERT_EQ(report.results.size(), cfg.scenarios);
    EXPECT_EQ(report.count(Outcome::BudgetExceeded), cfg.scenarios);
    for (const ScenarioResult &r : report.results) {
        EXPECT_EQ(r.outcome, Outcome::BudgetExceeded);
        EXPECT_EQ(verify::BudgetTrip(r.budgetTrip),
                  verify::BudgetTrip::Cycles);
        // Deterministic trips never retry.
        EXPECT_EQ(r.attempts, 1u);
        EXPECT_TRUE(r.quarantined);
    }
    // The gate ignores budget stops; the campaign still reports.
    EXPECT_EQ(report.protectedSilentCorruptions(), 0u);

    // One content-addressed descriptor + verdict sidecar per
    // distinct scenario.
    size_t scenarios = 0, verdicts = 0;
    for (const auto &e : fs::directory_iterator(cfg.quarantineDir)) {
        if (e.path().extension() == ".scenario")
            ++scenarios;
        else if (e.path().extension() == ".verdict")
            ++verdicts;
    }
    EXPECT_EQ(scenarios, cfg.scenarios);
    EXPECT_EQ(verdicts, cfg.scenarios);

    // The JSON carries the structured outcome.
    std::string json = report.toJson();
    EXPECT_NE(json.find("budget-exceeded"), std::string::npos);

    // Deterministic trips are thread-invariant like any verdict.
    CampaignConfig cfg1 = cfg;
    cfg1.threads = 1;
    cfg1.quarantineDir = (dir / "quarantine1").string();
    EXPECT_EQ(runCampaign(cfg1).toJson(), json);
}

} // namespace
} // namespace zarf::fault
