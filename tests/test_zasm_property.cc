/**
 * @file
 * Assembler round-trip properties over randomly generated programs:
 * printAssembly must re-parse and lower to a byte-identical binary,
 * and the binary disassembly must render without loss of structure.
 */

#include <gtest/gtest.h>

#include "fuzz/genprog.hh"
#include "isa/binary.hh"
#include "zasm/zasm.hh"

namespace zarf
{
namespace
{

class ZasmRoundTrip : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ZasmRoundTrip, PrintParseLowerIdentical)
{
    fuzz::GenConfig cfg;
    cfg.numCons = 4;
    cfg.numFuncs = 6;
    cfg.maxDepth = 5;
    fuzz::ProgramGenerator gen(GetParam() * 611953 + 41, cfg);
    ProgramBuilder pb = gen.generate();
    BuildResult b1 = pb.tryBuild();
    ASSERT_TRUE(b1.ok) << b1.error;
    Image img1 = encodeProgram(b1.program);

    std::string text = printAssembly(pb);
    ParseResult pr = parseAssembly(text);
    ASSERT_TRUE(pr.ok) << pr.error << "\n" << text;
    BuildResult b2 = pr.builder.tryBuild();
    ASSERT_TRUE(b2.ok) << b2.error;

    EXPECT_EQ(encodeProgram(b2.program), img1)
        << "printed assembly lowered differently:\n" << text;

    // And the machine-form disassembly of the binary mentions every
    // declaration.
    Program dec = decodeProgramOrDie(img1);
    std::string dis = disassemble(dec);
    EXPECT_NE(dis.find("main"), std::string::npos);
    for (size_t i = 0; i < dec.decls.size(); ++i) {
        if (!dec.decls[i].isCons)
            continue;
        EXPECT_NE(dis.find(dec.decls[i].name), std::string::npos);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZasmRoundTrip,
                         ::testing::Range(uint64_t(0), uint64_t(80)));

} // namespace
} // namespace zarf
