/**
 * @file
 * WCET analysis tests (Sec. 5.2): the static bound must dominate
 * every observed execution on the cycle-level machine, recursion
 * outside the declared boundaries must be rejected, and the
 * ICD-kernel bound must sit far inside the 5 ms real-time deadline.
 */

#include <gtest/gtest.h>

#include "icd/baseline.hh"
#include "icd/zarf_icd.hh"
#include "lowlevel/extract.hh"
#include "machine/machine.hh"
#include "support/random.hh"
#include "system/system.hh"
#include "verify/wcet.hh"
#include "zasm/zasm.hh"

namespace zarf::verify
{
namespace
{

TEST(Wcet, StraightLineBoundDominatesObserved)
{
    Program p = assembleOrDie(R"(
fun main =
  let r = work 3 4
  result r
fun work a b =
  let x = mul a b
  let y = add x a
  let z = sub y b
  result z
)");
    WcetReport r = analyzeWcet(p, "work");
    ASSERT_TRUE(r.ok) << r.error;

    NullBus bus;
    Machine m(encodeProgram(p), bus);
    ASSERT_EQ(m.run().status, MachineStatus::Done);
    // Total machine cycles minus load cover main + work; the bound
    // for work alone must dominate the work-only portion, so the
    // weaker whole-run check uses main's bound.
    WcetReport rm = analyzeWcet(p, "main");
    ASSERT_TRUE(rm.ok);
    Cycles observed = m.cycles() - m.stats().loadCycles;
    EXPECT_GE(rm.execBound, observed);
}

TEST(Wcet, BranchesTakeWorstPath)
{
    Program p = assembleOrDie(R"(
fun main =
  result 0
fun pick n =
  case n of
    0 =>
      result 1
    1 =>
      let a = mul n 2
      let b = mul a a
      let c = add b a
      result c
  else
    let d = add n 1
    result d
)");
    WcetReport r = analyzeWcet(p, "pick");
    ASSERT_TRUE(r.ok) << r.error;
    // The worst branch (three lets) must be what's charged: the
    // bound exceeds the cost of the cheap branch by at least two
    // ALU applications.
    WcetConfig cfg;
    Cycles oneAlu = primApplyWorstCase(cfg.timing);
    EXPECT_GT(r.execBound, 2 * oneAlu);
}

TEST(Wcet, RejectsUnmarkedRecursion)
{
    Program p = assembleOrDie(R"(
fun main =
  result 0
fun spin n =
  let m = spin n
  result m
)");
    WcetReport r = analyzeWcet(p, "spin");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("recursive"), std::string::npos);
}

TEST(Wcet, BoundaryFunctionAnalyzesOneIteration)
{
    Program p = assembleOrDie(R"(
fun main =
  result 0
fun loop n =
  let x = add n 1
  let m = loop x
  result m
)");
    WcetConfig cfg;
    cfg.boundaryFunctions.insert("loop");
    WcetReport r = analyzeWcet(p, "loop", cfg);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.execBound, 0u);
    EXPECT_LT(r.execBound, 200u); // one iteration only
}

TEST(Wcet, RejectsHigherOrderCalls)
{
    Program p = assembleOrDie(R"(
fun main =
  result 0
fun ho f =
  let x = f 1
  result x
)");
    WcetReport r = analyzeWcet(p, "ho");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("first-order"), std::string::npos);
}

TEST(Wcet, GcBoundFollowsPaperFormula)
{
    Program p = assembleOrDie(R"(
fun main =
  let a = add 1 2
  let b = add a 3
  result b
)");
    WcetReport r = analyzeWcet(p, "main");
    ASSERT_TRUE(r.ok);
    // Two 3-word objects (header + two args): N+4 each, plus two
    // 2-cycle checks per payload word, plus setup.
    TimingModel t;
    Cycles expect = t.gcSetup + 2 * t.gcPerObjectFixed +
                    6 * t.gcPerWordCopied + 6 * t.gcRefCheck;
    EXPECT_EQ(r.gcBound, expect);
    EXPECT_EQ(r.allocObjects, 2u);
    EXPECT_EQ(r.allocWords, 6u);
}

// ----------------------------------------------------------------
// The headline analysis: one ICD kernel iteration
// ----------------------------------------------------------------

WcetReport
kernelIterationBound()
{
    static Program p = ll::extractOrDie(icd::buildKernelLowLevel());
    WcetConfig cfg;
    cfg.boundaryFunctions.insert("kernelLoop");
    cfg.boundaryFunctions.insert("waitTick");
    return analyzeWcet(p, "kernelLoop", cfg);
}

TEST(Wcet, KernelIterationMeetsRealTimeDeadline)
{
    WcetReport r = kernelIterationBound();
    ASSERT_TRUE(r.ok) << r.error;
    // Paper: worst loop 4,686 cycles + GC 4,379 = 9,065 total,
    // against a 250,000-cycle (5 ms at 50 MHz) deadline — "over 25
    // times faster than it needs to be". Require the same shape:
    // thousands of cycles, at least 10x margin.
    EXPECT_GT(r.execBound, 1000u);
    EXPECT_GT(r.gcBound, 500u);
    EXPECT_LT(r.totalBound(), sys::kTickCycles / 10);
}

TEST(Wcet, KernelBoundDominatesObservedIterations)
{
    WcetReport r = kernelIterationBound();
    ASSERT_TRUE(r.ok) << r.error;

    // Run the real two-layer system and compare the observed
    // worst iteration (sample read to comm write) plus observed GC
    // against the static bound.
    ecg::ScriptedHeart heart({ { 10.0, 75.0 }, { 30.0, 190.0 } },
                             21);
    sys::TwoLayerSystem system(icd::buildKernelImage(),
                               icd::monitorProgram(), heart);
    system.runForMs(35000.0);
    ASSERT_GT(system.samplesRead(), 6500u);

    EXPECT_GE(r.execBound, system.maxIterationCycles())
        << "static bound below an observed iteration";

    // Observed per-iteration GC cycles must also be dominated.
    const MachineStats &s = system.lambdaStats();
    ASSERT_GT(s.gcRuns, 0u);
    Cycles meanGc = s.gcCycles / s.gcRuns;
    EXPECT_GE(r.gcBound, meanGc);
}

TEST(Wcet, SummaryRendersKeyNumbers)
{
    WcetReport r = kernelIterationBound();
    ASSERT_TRUE(r.ok);
    std::string s = r.summary();
    EXPECT_NE(s.find("execution bound"), std::string::npos);
    EXPECT_NE(s.find("GC bound"), std::string::npos);
    EXPECT_NE(s.find("total"), std::string::npos);
    // Per-function details include the ICD stages.
    EXPECT_TRUE(r.functions.count("icdStep"));
    EXPECT_TRUE(r.functions.count("lpStep"));
}

} // namespace
} // namespace zarf::verify
