/**
 * @file
 * Fault-campaign determinism: the campaign runner must produce a
 * bit-identical report — including its JSON rendering — for the
 * same (scenarios, seedBase) regardless of worker-thread count.
 * The full-size sweep lives in bench/bench_fault_campaign; this
 * keeps a small always-on regression in the test suite.
 */

#include <gtest/gtest.h>

#include "fault/campaign.hh"

namespace zarf::fault
{
namespace
{

TEST(FaultCampaign, ReportIdenticalAcrossThreadCounts)
{
    CampaignConfig cfg;
    cfg.scenarios = 3; // heap-seu, heap-seu-double, operand-seu
    cfg.seedBase = 9;

    cfg.threads = 1;
    CampaignReport a = runCampaign(cfg);
    cfg.threads = 3;
    CampaignReport b = runCampaign(cfg);

    ASSERT_EQ(a.results.size(), 3u);
    EXPECT_EQ(a.toJson(), b.toJson());

    // Protected-memory scenarios never silently corrupt output.
    EXPECT_EQ(a.protectedSilentCorruptions(), 0u);
    for (const ScenarioResult &r : a.results) {
        EXPECT_TRUE(r.protectedMemory);
        EXPECT_FALSE(r.vtFlavor);
    }
}

} // namespace
} // namespace zarf::fault
