/**
 * @file
 * Fault-model unit tests below the system layer: the heap's
 * corruption detection (the conditions that used to abort the host
 * now latch recoverable state), the SEU injection APIs, the
 * imperative core's structured fault record, and the determinism of
 * seed-derived fault plans.
 */

#include <gtest/gtest.h>

#include "fault/plan.hh"
#include "machine/heap.hh"
#include "machine/machine.hh"
#include "mblaze/cpu.hh"
#include "mblaze/isa.hh"
#include "sem/io.hh"

namespace zarf
{
namespace
{

class HeapFixture : public ::testing::Test
{
  protected:
    TimingModel timing;
    MachineStats stats;
    Heap heap{ 1024, timing, stats };
};

// Satellite (a): a corrupted header can make the live set exceed a
// semispace. The seed panicked ("GC to-space overflow"); now the
// heap latches a sticky corruption flag and survives.
TEST_F(HeapFixture, GcToSpaceOverflowIsRecoverableNotFatal)
{
    std::vector<Word> roots;
    for (int i = 0; i < 20; ++i) {
        Word addr = heap.alloc(ObjKind::Cons, 0,
                               { mval::mkInt(i), mval::mkInt(i) });
        roots.push_back(mval::mkRef(addr));
    }
    ASSERT_FALSE(heap.corrupt());

    // An SEU in a header inflates one object's payload count to the
    // maximum (2047 words) — far beyond a 1024-word semispace.
    Word victim = mval::refOf(roots[3]);
    heap.setHeader(victim, mhdr::pack(ObjKind::Cons, 0x7ff, 0));

    heap.collect([&](const Heap::RootVisitor &v) {
        for (Word &r : roots)
            v(r);
    });

    EXPECT_TRUE(heap.corrupt());
    EXPECT_NE(std::string(heap.corruptWhy()).find("to-space overflow"),
              std::string::npos);
}

TEST_F(HeapFixture, ChaseDetectsIndirectionCycle)
{
    Word a = heap.alloc(ObjKind::Ind, 0, { mval::mkInt(0) });
    Word b = heap.alloc(ObjKind::Ind, 0, { mval::mkRef(a) });
    // Corruption closes the loop: a -> b -> a.
    heap.setPayload(a, 0, mval::mkRef(b));

    Word v = heap.chase(mval::mkRef(a));
    EXPECT_TRUE(mval::isInt(v)); // safe fallback value
    EXPECT_TRUE(heap.corrupt());
    EXPECT_NE(std::string(heap.corruptWhy()).find("indirection cycle"),
              std::string::npos);
}

TEST_F(HeapFixture, CollectDetectsIndirectionCycle)
{
    Word a = heap.alloc(ObjKind::Ind, 0, { mval::mkInt(0) });
    Word b = heap.alloc(ObjKind::Ind, 0, { mval::mkRef(a) });
    heap.setPayload(a, 0, mval::mkRef(b));

    Word root = mval::mkRef(a);
    heap.collect([&](const Heap::RootVisitor &v) { v(root); });

    EXPECT_TRUE(heap.corrupt());
    EXPECT_NE(std::string(heap.corruptWhy()).find("indirection cycle"),
              std::string::npos);
}

TEST_F(HeapFixture, ChaseRejectsWildReference)
{
    // A reference beyond both semispaces (bit-flipped address).
    Word v = heap.chase(mval::mkRef(3 * 1024));
    EXPECT_TRUE(mval::isInt(v));
    EXPECT_TRUE(heap.corrupt());
}

TEST_F(HeapFixture, FlipBitChangesOneAllocatedWord)
{
    Word addr =
        heap.alloc(ObjKind::Cons, 7, { mval::mkInt(5), mval::mkInt(6) });
    Word before = heap.payload(addr, 0);
    // The object is the only allocation: word offset addr+1 is its
    // first payload word.
    heap.flipBit(addr + 1, 3);
    EXPECT_EQ(heap.payload(addr, 0), before ^ (Word(1) << 3));

    // Offsets wrap modulo the used words instead of escaping.
    Word h = heap.header(addr);
    heap.flipBit(addr + heap.usedWords(), 0);
    EXPECT_EQ(heap.header(addr), h ^ 1u);
}

TEST_F(HeapFixture, FlipBitOnEmptyHeapIsNoOp)
{
    heap.flipBit(0, 0);
    EXPECT_FALSE(heap.corrupt());
    EXPECT_EQ(heap.usedWords(), 0u);
}

TEST(MachineStatusNames, AllStatusesNamed)
{
    EXPECT_STREQ(machineStatusName(MachineStatus::Running), "Running");
    EXPECT_STREQ(machineStatusName(MachineStatus::Done), "Done");
    EXPECT_STREQ(machineStatusName(MachineStatus::OutOfMemory),
                 "OutOfMemory");
    EXPECT_STREQ(machineStatusName(MachineStatus::Stuck), "Stuck");
    EXPECT_STREQ(machineStatusName(MachineStatus::HeapCorrupt),
                 "HeapCorrupt");
    EXPECT_STREQ(machineStatusName(MachineStatus::MemFault),
                 "MemFault");
}

// Satellite (b): the imperative core's fault record carries cause,
// pc, and address, so the system layer can report it over the
// diagnostic channel instead of seeing a bare Fault status.
class NullBus : public IoBus
{
  public:
    SWord getInt(SWord) override { return 0; }
    void putInt(SWord, SWord) override {}
};

TEST(MbFaultRecord, LoadOutOfRangeRecordsCausePcAddr)
{
    NullBus bus;
    mblaze::MbCpu cpu(mblaze::assembleMbOrDie(R"(
        movi r1, 99999999
        lw r2, r1, 0
        halt
    )"),
                      bus);
    EXPECT_EQ(cpu.run(), mblaze::MbStatus::Fault);
    const mblaze::MbFaultInfo &f = cpu.faultInfo();
    EXPECT_EQ(f.cause, mblaze::MbFaultInfo::Cause::LoadOutOfRange);
    EXPECT_EQ(f.pc, 1u);
    EXPECT_EQ(f.addr, 99999999);
}

TEST(MbFaultRecord, StoreOutOfRangeRecordsCause)
{
    NullBus bus;
    mblaze::MbCpu cpu(mblaze::assembleMbOrDie(R"(
        movi r1, -4
        sw r1, r1, 0
        halt
    )"),
                      bus);
    EXPECT_EQ(cpu.run(), mblaze::MbStatus::Fault);
    EXPECT_EQ(cpu.faultInfo().cause,
              mblaze::MbFaultInfo::Cause::StoreOutOfRange);
    EXPECT_EQ(cpu.faultInfo().addr, -4);
}

TEST(MbFaultRecord, HealthyCpuReportsNoCause)
{
    NullBus bus;
    mblaze::MbCpu cpu(mblaze::assembleMbOrDie("halt\n"), bus);
    EXPECT_EQ(cpu.run(), mblaze::MbStatus::Halted);
    EXPECT_EQ(cpu.faultInfo().cause,
              mblaze::MbFaultInfo::Cause::None);
}

TEST(FaultPlan, SingleKindPlanIsDeterministic)
{
    fault::FaultWindow w{ 1000, 2'000'000 };
    for (size_t k = 0; k < fault::kNumFaultKinds; ++k) {
        auto kind = fault::FaultKind(k);
        fault::FaultPlan p1 = fault::singleKindPlan(kind, 77, w, 5);
        fault::FaultPlan p2 = fault::singleKindPlan(kind, 77, w, 5);
        ASSERT_EQ(p1.events.size(), 5u);
        for (size_t i = 0; i < p1.events.size(); ++i) {
            EXPECT_EQ(p1.events[i].atCycle, p2.events[i].atCycle);
            EXPECT_EQ(p1.events[i].a, p2.events[i].a);
            EXPECT_EQ(p1.events[i].b, p2.events[i].b);
            EXPECT_GE(p1.events[i].atCycle, w.begin);
            EXPECT_LT(p1.events[i].atCycle, w.end);
            if (i > 0)
                EXPECT_GE(p1.events[i].atCycle,
                          p1.events[i - 1].atCycle);
        }
    }
}

TEST(FaultPlan, DifferentSeedsDiverge)
{
    fault::FaultWindow w{ 0, 50'000'000 };
    auto p1 = fault::singleKindPlan(fault::FaultKind::HeapSeu, 1, w);
    auto p2 = fault::singleKindPlan(fault::FaultKind::HeapSeu, 2, w);
    EXPECT_NE(p1.events[0].atCycle, p2.events[0].atCycle);
}

TEST(FaultPlan, EveryKindHasAName)
{
    for (size_t k = 0; k < fault::kNumFaultKinds; ++k)
        EXPECT_STRNE(fault::faultKindName(fault::FaultKind(k)), "?");
}

TEST(FaultPlan, DoubleBitSeuPacksTwoDistinctBits)
{
    fault::FaultWindow w{ 0, 1000 };
    for (uint64_t seed = 1; seed < 30; ++seed) {
        auto p = fault::singleKindPlan(fault::FaultKind::HeapSeuDouble,
                                       seed, w);
        uint64_t b1 = p.events[0].b & 0xff;
        uint64_t b2 = (p.events[0].b >> 8) & 0xff;
        EXPECT_LT(b1, 32u);
        EXPECT_LT(b2, 32u);
        EXPECT_NE(b1, b2);
    }
}

} // namespace
} // namespace zarf
