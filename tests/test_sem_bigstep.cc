/**
 * @file
 * Big-step semantics tests: one test per evaluation rule of Fig. 3,
 * plus primitive behaviour, partial/over-application, and errors.
 */

#include <gtest/gtest.h>

#include "common/testprogs.hh"
#include "sem/bigstep.hh"
#include "support/logging.hh"
#include "zasm/zasm.hh"

namespace zarf
{
namespace
{

ValuePtr
evalMain(const std::string &text, IoBus &bus)
{
    Program p = assembleOrDie(text);
    BigStep bs(p, bus);
    EvalResult r = bs.runMain();
    EXPECT_TRUE(r.ok()) << "status " << int(r.status) << " at "
                        << r.where;
    return r.value;
}

ValuePtr
evalMainPure(const std::string &text)
{
    NullBus bus;
    return evalMain(text, bus);
}

SWord
intMain(const std::string &text)
{
    ValuePtr v = evalMainPure(text);
    EXPECT_TRUE(v && v->isInt()) << (v ? v->toString() : "<null>");
    return v ? v->intVal() : 0;
}

// (result): a result expression yields ρ(arg).
TEST(BigStep, ResultRule)
{
    EXPECT_EQ(intMain("fun main = result 7"), 7);
    EXPECT_EQ(intMain("fun main = result -3"), -3);
}

// (let-prim): primitive application evaluates via the ALU.
TEST(BigStep, LetPrimRule)
{
    EXPECT_EQ(intMain("fun main = let x = add 2 3\n result x"), 5);
    EXPECT_EQ(intMain("fun main = let x = sub 2 3\n result x"), -1);
    EXPECT_EQ(intMain("fun main = let x = mul 6 7\n result x"), 42);
}

// (let-fun): user function application.
TEST(BigStep, LetFunRule)
{
    EXPECT_EQ(intMain(R"(
fun main =
  let x = double 21
  result x
fun double n =
  let y = add n n
  result y
)"),
              42);
}

// (let-con): constructor application builds a tuple value.
TEST(BigStep, LetConRule)
{
    ValuePtr v = evalMainPure(R"(
con Pair a b
fun main =
  let p = Pair 1 2
  result p
)");
    ASSERT_TRUE(v->isCons());
    ASSERT_EQ(v->items().size(), 2u);
    EXPECT_EQ(v->items()[0]->intVal(), 1);
    EXPECT_EQ(v->items()[1]->intVal(), 2);
}

// (let-var): applying a closure held in a variable.
TEST(BigStep, LetVarRule)
{
    EXPECT_EQ(intMain(R"(
fun main =
  let f = adder 10
  let x = f 32
  result x
fun adder a b =
  let s = add a b
  result s
)"),
              42);
}

// (case-lit) and (case-else2): literal matching.
TEST(BigStep, CaseLitRule)
{
    const char *text = R"(
fun main =
  let x = classify %d
  result x
fun classify n =
  case n of
    0 =>
      result 100
    1 =>
      result 200
  else
    result 300
)";
    auto run = [&](int n) {
        return intMain(strprintf(text, n));
    };
    EXPECT_EQ(run(0), 100);
    EXPECT_EQ(run(1), 200);
    EXPECT_EQ(run(7), 300);
}

// (case-con) and (case-else1): constructor matching binds fields.
TEST(BigStep, CaseConRule)
{
    EXPECT_EQ(intMain(R"(
con None
con Some x
fun main =
  let s = Some 41
  case s of
    Some x =>
      let y = add x 1
      result y
    None =>
      result 0
  else
    result -1
)"),
              42);
}

TEST(BigStep, CaseElseOnUnmatchedCons)
{
    EXPECT_EQ(intMain(R"(
con A
con B
fun main =
  let a = A
  case a of
    B =>
      result 1
  else
    result 2
)"),
              2);
}

// applyFn under-application: a partial application is a closure.
TEST(BigStep, PartialApplicationIsClosure)
{
    ValuePtr v = evalMainPure(R"(
fun main =
  let f = add3 1 2
  result f
fun add3 a b c =
  let x = add a b
  let y = add x c
  result y
)");
    ASSERT_TRUE(v->isClosure());
    EXPECT_EQ(v->items().size(), 2u);
}

// applyFn over-application: result applied to leftover arguments.
TEST(BigStep, OverApplication)
{
    EXPECT_EQ(intMain(R"(
fun main =
  let x = makeAdder 30 12
  result x
fun makeAdder a =
  let f = adder a
  result f
fun adder a b =
  let s = add a b
  result s
)"),
              42);
}

// Partial application of a primitive is also a closure (applyPrim).
TEST(BigStep, PartialPrimApplication)
{
    EXPECT_EQ(intMain(R"(
fun main =
  let inc = add 1
  let x = inc 41
  result x
)"),
              42);
}

// applyCn partial application of a constructor.
TEST(BigStep, PartialConstructorApplication)
{
    ValuePtr v = evalMainPure(R"(
con Pair a b
fun main =
  let p1 = Pair 1
  let p = p1 2
  result p
)");
    ASSERT_TRUE(v->isCons());
    EXPECT_EQ(v->items()[0]->intVal(), 1);
    EXPECT_EQ(v->items()[1]->intVal(), 2);
}

// Division by zero yields the reserved Error constructor.
TEST(BigStep, DivByZeroIsError)
{
    ValuePtr v = evalMainPure(
        "fun main = let x = div 1 0\n result x");
    ASSERT_TRUE(v->isError());
    EXPECT_EQ(v->items()[0]->intVal(), kErrDivZero);
}

// Applying an integer as a function is the bad-apply error.
TEST(BigStep, ApplyIntegerIsError)
{
    ValuePtr v = evalMainPure(R"(
fun main =
  let x = add 1 2
  let y = id x
  let z = y 5
  result z
fun id a =
  result a
)");
    ASSERT_TRUE(v->isError());
    EXPECT_EQ(v->items()[0]->intVal(), kErrBadApply);
}

// Over-applying a saturated constructor is an arity error.
TEST(BigStep, OverApplyConstructorIsError)
{
    ValuePtr v = evalMainPure(R"(
con Box x
fun main =
  let b = Box 1
  let y = b 2
  result y
)");
    ASSERT_TRUE(v->isError());
    EXPECT_EQ(v->items()[0]->intVal(), kErrArity);
}

// Errors absorb further application and propagate through prims.
TEST(BigStep, ErrorPropagation)
{
    ValuePtr v = evalMainPure(R"(
fun main =
  let e = div 1 0
  let x = add e 1
  result x
)");
    ASSERT_TRUE(v->isError());
    EXPECT_EQ(v->items()[0]->intVal(), kErrDivZero);
}

// (getint)/(putint): I/O rules.
TEST(BigStep, GetPutInt)
{
    ScriptBus bus;
    bus.feed(0, { 5, 7, 9, 11, 13 });
    ValuePtr v = evalMain(testing::ioEchoProgramText(), bus);
    ASSERT_TRUE(v->isInt());
    EXPECT_EQ(bus.written(1),
              (std::vector<SWord>{ 15, 17, 19, 21, 23 }));
}

// putint returns the written value.
TEST(BigStep, PutIntReturnsValue)
{
    ScriptBus bus;
    ValuePtr v = evalMain(
        "fun main = let x = putint 3 99\n result x", bus);
    EXPECT_EQ(v->intVal(), 99);
    EXPECT_EQ(bus.written(3), (std::vector<SWord>{ 99 }));
}

// Whole-program rule: evaluation begins at main.
TEST(BigStep, MapProgram)
{
    // map (+1) [1,2,3] summed = 2+3+4 = 9.
    EXPECT_EQ(intMain(testing::mapProgramText()), 9);
}

TEST(BigStep, ChurchNumerals)
{
    // ((2^(2^3)) applications of succ) 0 = 256.
    EXPECT_EQ(intMain(testing::churchProgramText()), 256);
}

// The recursion-depth guard reports instead of crashing the host.
TEST(BigStep, DepthLimitReported)
{
    Program p = assembleOrDie(R"(
fun main =
  let x = spin 1
  result x
fun spin n =
  let m = spin n
  result m
)");
    NullBus bus;
    BigStepConfig cfg;
    cfg.maxDepth = 100;
    BigStep bs(p, bus, cfg);
    EvalResult r = bs.runMain();
    EXPECT_EQ(r.status, EvalResult::Status::DepthExceeded);
}

// The fuel guard catches non-recursive blowups too.
TEST(BigStep, FuelLimitReported)
{
    Program p = assembleOrDie(testing::countdownProgramText());
    NullBus bus;
    BigStepConfig cfg;
    cfg.maxSteps = 1000;
    BigStep bs(p, bus, cfg);
    EvalResult r = bs.runMain();
    EXPECT_EQ(r.status, EvalResult::Status::OutOfFuel);
}

// call(): direct invocation of a named function with values.
TEST(BigStep, DirectCall)
{
    Program p = assembleOrDie(testing::mapProgramText());
    NullBus bus;
    BigStep bs(p, bus);
    EvalResult r = bs.call("addOne", { Value::makeInt(9) });
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value->intVal(), 10);
}

// Machine integers wrap on the 31-bit ring.
TEST(BigStep, IntegerWraparound)
{
    EXPECT_EQ(intMain(R"(
fun main =
  let big = shl 1 30
  let neg = sub big 1
  let x = add big neg
  result x
)"),
              wrapInt31((1LL << 30) + ((1LL << 30) - 1)));
}

} // namespace
} // namespace zarf
