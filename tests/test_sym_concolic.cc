/**
 * @file
 * The concolic cross-checking harness testing itself
 * (docs/SYMBOLIC.md, docs/TESTING.md):
 *
 *  - property sweep: hundreds of generated programs, every feasible
 *    symbolic path concretized and replayed through the differential
 *    oracle with zero divergences — outcome class, result value, I/O
 *    log, and cycle-bound dominance all checked per path;
 *  - WCET: on every replayed path the symbolic bound dominates the
 *    concrete machine cycles, and complete per-program bounds
 *    dominate the maximum observed concrete run;
 *  - determinism: path enumeration and the full concolic report are
 *    bit-identical across repeated runs and across replay
 *    thread counts;
 *  - the checked-in corpus sweeps clean;
 *  - mutation-kill: deliberately corrupting the symbolic Mul
 *    transfer rule (sym/testhooks.hh) makes the replay suite detect
 *    a divergence within a bounded path budget — proof the concolic
 *    cross-check has teeth;
 *  - replaySingle (fuzz/replay.hh) is byte-identical to the
 *    campaign/CLI replay path.
 */

#include <gtest/gtest.h>

#include "fuzz/corpus.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/genprog.hh"
#include "fuzz/replay.hh"
#include "isa/binary.hh"
#include "sym/concolic.hh"
#include "sym/testhooks.hh"
#include "verify/parallel.hh"

namespace zarf::sym
{
namespace
{

/** Number of generated programs in the property sweep. */
constexpr uint64_t kSweepPrograms = 500;

ConcolicConfig
sweepConfig()
{
    ConcolicConfig cfg;
    cfg.eval.maxVars = 6;
    cfg.eval.maxChoices = 16;
    cfg.explore.maxPaths = 24;
    cfg.threads = 1; // outer parallelism drives the sweep
    return cfg;
}

Image
genImage(uint64_t seed)
{
    fuzz::GenConfig gc;
    fuzz::ProgramGenerator gen(seed, gc);
    return encodeProgram(gen.generate().build());
}

/** Everything observable about a report, rendered to one string so
 *  determinism checks are exact. */
std::string
fingerprint(const ConcolicReport &rep)
{
    std::string s;
    s += "usable=" + std::to_string(rep.originalUsable);
    s += " vars=" + std::to_string(rep.numVars);
    s += " exhaustive=" + std::to_string(rep.exhaustive);
    s += " wcet=" + std::to_string(rep.wcetBound);
    s += std::to_string(rep.wcetComplete);
    for (const PathReport &pr : rep.paths) {
        s += "\npath[";
        for (unsigned c : pr.script)
            s += std::to_string(c) + ",";
        s += "] " + std::string(pathCheckName(pr.check));
        s += " " + pr.detail;
        s += " pred=" + std::to_string(pr.predictedCycles);
        s += " conc=" + std::to_string(pr.concreteCycles);
        s += " sup=" + std::to_string(pr.observedSupport);
        s += " model=";
        for (SWord m : pr.model)
            s += std::to_string(m) + ",";
    }
    return s;
}

/** Per-program result of the sweep. */
struct SweepOutcome
{
    bool usable = false;
    uint64_t replayed = 0;
    uint64_t diverged = 0;
    uint64_t dominanceViolations = 0;
    std::string firstDivergence;
};

SweepOutcome
sweepOne(uint64_t seed)
{
    SweepOutcome out;
    Image img = genImage(seed);
    ConcolicReport rep = runConcolic(img, sweepConfig());
    out.usable = rep.originalUsable;
    out.replayed = rep.replayedPaths;
    out.diverged = rep.divergedPaths;
    for (const PathReport &pr : rep.paths) {
        if (pr.check == PathCheck::Diverged &&
            out.firstDivergence.empty())
            out.firstDivergence =
                "seed " + std::to_string(seed) + ": " + pr.detail;
        if (pr.check == PathCheck::Replayed &&
            pr.concreteCycles > pr.predictedCycles)
            out.dominanceViolations++;
    }
    // Complete program bounds dominate every replayed run.
    if (rep.wcetComplete) {
        for (const PathReport &pr : rep.paths) {
            if (pr.check == PathCheck::Replayed &&
                pr.concreteCycles > rep.wcetBound)
                out.dominanceViolations++;
        }
    }
    return out;
}

/** The acceptance sweep: kSweepPrograms generated programs, every
 *  feasible path replayed, zero divergences, dominance everywhere.
 *  Fanned across hardware threads; per-program work is
 *  single-threaded so the verdicts are scheduling-independent. */
TEST(SymConcolic, GeneratedProgramSweepHasZeroDivergences)
{
    verify::ParallelConfig pc;
    pc.threads = 0;
    pc.seedBase = 0x5eed;
    pc.shards = kSweepPrograms;
    std::vector<SweepOutcome> outs = verify::shardMap(
        pc, [](size_t shard, uint64_t) -> SweepOutcome {
            return sweepOne(uint64_t(shard) + 1);
        });

    uint64_t usable = 0, replayed = 0, diverged = 0, dom = 0;
    std::string firstDiv;
    for (const SweepOutcome &o : outs) {
        usable += o.usable;
        replayed += o.replayed;
        diverged += o.diverged;
        dom += o.dominanceViolations;
        if (firstDiv.empty())
            firstDiv = o.firstDivergence;
    }
    EXPECT_EQ(diverged, 0u) << firstDiv;
    EXPECT_EQ(dom, 0u);
    // The sweep must not be vacuous: most generated programs are
    // usable and most explored paths actually replay.
    EXPECT_GE(usable, kSweepPrograms / 2);
    EXPECT_GE(replayed, kSweepPrograms);
}

TEST(SymConcolic, CheckedInCorpusSweepsClean)
{
    fuzz::CorpusLoad load = fuzz::loadCorpusDir(ZARF_SYM_CORPUS_DIR);
    ASSERT_TRUE(load.errors.empty());
    ASSERT_FALSE(load.entries.empty());
    size_t explored = 0;
    for (const auto &e : load.entries) {
        ConcolicReport rep = runConcolic(e.image, sweepConfig());
        if (!rep.originalUsable)
            continue; // decode/predecode-rejected entries
        explored++;
        EXPECT_EQ(rep.divergedPaths, 0u)
            << fuzz::hashName(e.hash) << ": "
            << fingerprint(rep);
        for (const PathReport &pr : rep.paths) {
            if (pr.check == PathCheck::Replayed) {
                EXPECT_LE(pr.concreteCycles, pr.predictedCycles);
            }
        }
    }
    EXPECT_GT(explored, load.entries.size() / 2);
}

TEST(SymConcolic, ReportIsDeterministicAcrossRunsAndThreadCounts)
{
    for (uint64_t seed : { 3u, 11u, 17u }) {
        Image img = genImage(seed);
        ConcolicConfig one = sweepConfig();
        ConcolicReport a = runConcolic(img, one);
        ConcolicReport b = runConcolic(img, one);
        ConcolicConfig four = sweepConfig();
        four.threads = 4;
        ConcolicReport c = runConcolic(img, four);
        EXPECT_EQ(fingerprint(a), fingerprint(b)) << "seed " << seed;
        EXPECT_EQ(fingerprint(a), fingerprint(c)) << "seed " << seed;
    }
}

TEST(SymConcolic, PathEnumerationIsDeterministic)
{
    Image img = genImage(42);
    DecodeResult dec = decodeProgram(img);
    ASSERT_TRUE(dec.ok);
    SymEvalConfig ec;
    ec.maxVars = 6;
    auto scripts = [&](SymEval &ev) {
        ExploreResult ex = explorePaths(ev, {});
        std::vector<Script> ss;
        for (const auto &p : ex.paths)
            ss.push_back(p.script);
        return ss;
    };
    SymEval e1(dec.program, ec);
    SymEval e2(dec.program, ec);
    std::vector<Script> s1 = scripts(e1);
    EXPECT_EQ(s1, scripts(e2));
    // Re-exploring the same evaluator (warm term arena) is
    // identical too: runPath fully resets per-path state.
    EXPECT_EQ(s1, scripts(e1));
}

/** Scoped corruption of the symbolic Mul transfer rule. */
struct BrokenMulGuard
{
    BrokenMulGuard() { testhooks::symBrokenMulTransfer = true; }
    ~BrokenMulGuard() { testhooks::symBrokenMulTransfer = false; }
};

TEST(SymConcolic, MutationKillBrokenMulTransferIsDetected)
{
    // main: let a = mul 3 5; result a — both immediates symbolic,
    // so the predicted result is the term mul(v0, v1), which the
    // corrupted rule evaluates to 16 while the machine computes 15.
    ProgramBuilder pb;
    pb.fn("main", {},
          nLet("a", "mul", { nImm(3), nImm(5) }, nRet(nVar("a"))));
    Image img = encodeProgram(pb.build());

    ConcolicConfig cfg = sweepConfig();
    ConcolicReport clean = runConcolic(img, cfg);
    ASSERT_TRUE(clean.originalUsable);
    EXPECT_EQ(clean.divergedPaths, 0u);
    EXPECT_GE(clean.replayedPaths, 1u);

    BrokenMulGuard guard;
    ConcolicReport broken = runConcolic(img, cfg);
    ASSERT_TRUE(broken.originalUsable);
    EXPECT_GE(broken.divergedPaths, 1u)
        << "concolic replay failed to detect the corrupted Mul "
           "transfer rule";
    bool witnessed = false;
    for (const PathReport &pr : broken.paths) {
        if (pr.check == PathCheck::Diverged && !pr.witness.empty())
            witnessed = true;
    }
    EXPECT_TRUE(witnessed);
}

TEST(SymConcolic, MutationKillDetectedWithinGeneratedBudget)
{
    // The defect must also fall out of a small generated-program
    // budget, not just a handcrafted witness: scan seeds until one
    // program multiplies symbolic inputs on a feasible path.
    BrokenMulGuard guard;
    bool detected = false;
    for (uint64_t seed = 1; seed <= 40 && !detected; ++seed) {
        ConcolicReport rep =
            runConcolic(genImage(seed), sweepConfig());
        detected = rep.divergedPaths > 0;
    }
    EXPECT_TRUE(detected)
        << "40 generated programs never exposed the corrupted Mul "
           "rule";
}

TEST(SymConcolic, NoninterferenceTaintAndWitness)
{
    // result = v0 (the scrutinee-independent public input) under a
    // case on v1: observables depend on v1, so marking v1 secret
    // must fail NI with a concrete witness, while marking an unused
    // slot stays clean.
    ProgramBuilder pb;
    pb.fn("main", {},
          nCase(nImm(0), { litBranch(0, nRet(nImm(7))) },
                nRet(nImm(9))));
    Image img = encodeProgram(pb.build());
    ConcolicConfig cfg = sweepConfig();
    ConcolicReport rep = runConcolic(img, cfg);
    ASSERT_TRUE(rep.originalUsable);
    ASSERT_EQ(rep.numVars, 3u);
    EXPECT_EQ(rep.divergedPaths, 0u);

    // v0 (the scrutinee) steers control and selects the result:
    // every path's condition depends on it.
    NiResult leaky = checkNoninterference(img, rep, 0x1, cfg);
    EXPECT_FALSE(leaky.holds);
    EXPECT_FALSE(leaky.leakyPaths.empty());
    EXPECT_TRUE(leaky.witnessFound) << leaky.witnessDetail;

    // An unclaimed high bit is vacuously non-interfering.
    NiResult clean = checkNoninterference(img, rep, 1ull << 63, cfg);
    EXPECT_TRUE(clean.holds);
    EXPECT_TRUE(clean.leakyPaths.empty());
}

TEST(SymConcolic, RejectedOriginalsAreNotExplored)
{
    Image junk{ 0xdeadbeef, 1, 2, 3 };
    ConcolicReport rep = runConcolic(junk, sweepConfig());
    EXPECT_FALSE(rep.originalUsable);
    EXPECT_TRUE(rep.paths.empty());
    EXPECT_TRUE(rep.ok());
}

// ---- replaySingle regression (fuzz/replay.hh) ----

void
expectOracleResultsIdentical(const fuzz::OracleResult &a,
                             const fuzz::OracleResult &b)
{
    EXPECT_EQ(a.verdict, b.verdict);
    EXPECT_EQ(a.detail, b.detail);
    EXPECT_EQ(a.uopStatus, b.uopStatus);
    EXPECT_EQ(a.uopDiagnostic, b.uopDiagnostic);
    EXPECT_EQ(a.uopCycles, b.uopCycles);
    EXPECT_EQ(bool(a.uopValue), bool(b.uopValue));
    if (a.uopValue && b.uopValue) {
        EXPECT_TRUE(Value::equal(*a.uopValue, *b.uopValue));
    }
    EXPECT_TRUE(a.uopIo == b.uopIo);
    EXPECT_EQ(a.decodeOk, b.decodeOk);
    EXPECT_EQ(a.comparedBigStep, b.comparedBigStep);
    EXPECT_EQ(a.fastCompared, b.fastCompared);
    EXPECT_EQ(a.snapshotChecked, b.snapshotChecked);
}

TEST(SymConcolic, ReplaySingleMatchesCampaignReplayPath)
{
    fuzz::FuzzConfig fc;
    for (uint64_t seed : { 1u, 5u, 9u }) {
        Image img = genImage(seed);
        fuzz::OracleResult lib =
            fuzz::replaySingle(img, fc.oracle);
        fuzz::OracleResult cli = fuzz::replayImage(img, fc);
        expectOracleResultsIdentical(lib, cli);
        // And the call is pure: an immediate second invocation is
        // identical (no hidden corpus or coverage state).
        expectOracleResultsIdentical(
            lib, fuzz::replaySingle(img, fc.oracle));
    }
}

TEST(SymConcolic, ReplaySingleHonorsBudget)
{
    Image img = genImage(2);
    verify::Budget tripped{ verify::BudgetSpec{} };
    tripped.cancel();
    fuzz::OracleConfig oc;
    oc.budget = &tripped;
    // A pre-latched token must yield Skip, not a verdict.
    tripped.check(0, 0);
    fuzz::OracleResult o = fuzz::replaySingle(img, oc);
    EXPECT_EQ(o.verdict, fuzz::Verdict::Skip);
}

} // namespace
} // namespace zarf::sym
