/**
 * @file
 * Program image serialization tests: encode/decode round trips and
 * rejection of every malformed-image shape the loader must catch.
 */

#include <gtest/gtest.h>

#include "common/testprogs.hh"
#include "isa/binary.hh"
#include "isa/encoding.hh"
#include "isa/validate.hh"
#include "zasm/zasm.hh"

namespace zarf
{
namespace
{

Program
mapProgram()
{
    return assembleOrDie(testing::mapProgramText());
}

TEST(Binary, RoundTripMapProgram)
{
    Program p = mapProgram();
    Image img = encodeProgram(p);
    ASSERT_GE(img.size(), 2u);
    EXPECT_EQ(img[0], kMagic);
    EXPECT_EQ(img[1], p.decls.size());

    DecodeResult d = decodeProgram(img);
    ASSERT_TRUE(d.ok) << d.error;
    ASSERT_EQ(d.program.decls.size(), p.decls.size());
    for (size_t i = 0; i < p.decls.size(); ++i) {
        const Decl &a = p.decls[i];
        const Decl &b = d.program.decls[i];
        EXPECT_EQ(a.isCons, b.isCons);
        EXPECT_EQ(a.arity, b.arity);
        EXPECT_EQ(a.numLocals, b.numLocals);
        if (!a.isCons) {
            EXPECT_TRUE(exprEquals(*a.body, *b.body)) << a.name;
        }
    }
    // Re-encoding the decoded program is byte-identical.
    EXPECT_EQ(encodeProgram(d.program), img);
}

TEST(Binary, DecodedProgramValidates)
{
    Program p = mapProgram();
    DecodeResult d = decodeProgram(encodeProgram(p));
    ASSERT_TRUE(d.ok);
    EXPECT_TRUE(validateProgram(d.program).ok());
}

TEST(Binary, RejectsBadMagic)
{
    Image img = encodeProgram(mapProgram());
    img[0] = 0xdeadbeef;
    DecodeResult d = decodeProgram(img);
    EXPECT_FALSE(d.ok);
    EXPECT_NE(d.error.find("magic"), std::string::npos);
}

TEST(Binary, RejectsTruncatedImage)
{
    Image img = encodeProgram(mapProgram());
    img.resize(img.size() - 3);
    EXPECT_FALSE(decodeProgram(img).ok);
}

TEST(Binary, RejectsTrailingWords)
{
    Image img = encodeProgram(mapProgram());
    img.push_back(0);
    EXPECT_FALSE(decodeProgram(img).ok);
}

TEST(Binary, RejectsEmptyProgram)
{
    Image img = { kMagic, 0 };
    EXPECT_FALSE(decodeProgram(img).ok);
}

TEST(Binary, RejectsConstructorMain)
{
    // A lone constructor declaration cannot serve as main.
    Image img = { kMagic, 1, packInfo(true, 0, 2), 0 };
    DecodeResult d = decodeProgram(img);
    EXPECT_FALSE(d.ok);
}

TEST(Binary, RejectsMainWithArguments)
{
    Image img = { kMagic, 1, packInfo(false, 0, 1), 1,
                  packResult(opArg(0)) };
    DecodeResult d = decodeProgram(img);
    EXPECT_FALSE(d.ok);
    EXPECT_NE(d.error.find("main"), std::string::npos);
}

TEST(Binary, RejectsCaseWithoutElse)
{
    // main: case 0 of [lit 1 => result 2]  -- no else pattern word.
    Image body = { packCase(opImm(0)), packPatLit(1, 1),
                   packResult(opImm(2)) };
    Image img = { kMagic, 1,
                  packInfo(false, 0, 0),
                  Word(body.size()) };
    img.insert(img.end(), body.begin(), body.end());
    DecodeResult d = decodeProgram(img);
    EXPECT_FALSE(d.ok);
}

TEST(Binary, RejectsBadSkipField)
{
    // Skip says 2 but the branch body is 1 word: the loader must
    // reject skips that land mid-branch (paper, Sec. 3.3).
    Image body = { packCase(opImm(0)),
                   packPatLit(2, 0),
                   packResult(opImm(1)),
                   packPatElse(),
                   packResult(opImm(9)) };
    Image img = { kMagic, 1, packInfo(false, 0, 0),
                  Word(body.size()) };
    img.insert(img.end(), body.begin(), body.end());
    DecodeResult d = decodeProgram(img);
    EXPECT_FALSE(d.ok);
    EXPECT_NE(d.error.find("skip"), std::string::npos);
}

TEST(Binary, RejectsTruncatedArgList)
{
    // let declares 2 args but only 1 argument word follows.
    Image body = { packLet(CalleeKind::Func, 2, 0x01),
                   packOperand(opImm(1)),
                   packResult(opLocal(0)) };
    Image img = { kMagic, 1, packInfo(false, 1, 0),
                  Word(body.size()) };
    img.insert(img.end(), body.begin(), body.end());
    EXPECT_FALSE(decodeProgram(img).ok);
}

TEST(Binary, RejectsFunctionWithEmptyBody)
{
    Image img = { kMagic, 1, packInfo(false, 0, 0), 0 };
    EXPECT_FALSE(decodeProgram(img).ok);
}

TEST(Binary, MapFunctionEncodedSizeMatchesFigure)
{
    // Fig. 4's map: one case word, two pattern words + else, four
    // lets (one arg each... see testprogs) — verify our word-count
    // helper agrees with the encoder.
    Program p = mapProgram();
    int idx = p.findByName("map");
    ASSERT_GE(idx, 0);
    const Decl &d = p.decls[size_t(idx)];
    Image img = encodeProgram(p);
    // Find the declaration in the image and compare body length.
    size_t pos = 2;
    for (int i = 0; i < idx; ++i) {
        Word m = img[pos + 1];
        pos += 2 + m;
    }
    EXPECT_EQ(img[pos + 1], exprWordCount(*d.body));
}

TEST(Binary, ChurchAndCountdownRoundTrip)
{
    for (const std::string &text : { testing::churchProgramText(),
                                     testing::countdownProgramText(),
                                     testing::ioEchoProgramText() }) {
        Program p = assembleOrDie(text);
        Image img = encodeProgram(p);
        DecodeResult d = decodeProgram(img);
        ASSERT_TRUE(d.ok) << d.error;
        EXPECT_EQ(encodeProgram(d.program), img);
    }
}

} // namespace
} // namespace zarf
