/**
 * @file
 * Resource-model tests (Table 1): the λ-layer structure matches the
 * paper's state inventory; the calibrated model reproduces the
 * published synthesis numbers within tolerance; and the paper's
 * relative claim — the λ-layer costs roughly twice a minimal
 * imperative core and runs at half the clock — holds in the model.
 */

#include <gtest/gtest.h>

#include "verify/resource.hh"

namespace zarf::verify
{
namespace
{

double
relErr(double model, double paper)
{
    return std::abs(model - paper) / paper;
}

TEST(Resource, StateInventoryMatchesPaper)
{
    CoreStructure s = lambdaLayerStructure();
    EXPECT_EQ(s.fsmStates, 66u);
    EXPECT_EQ(kLoadStates, 4u);
    EXPECT_EQ(kApplyStates, 15u);
    EXPECT_EQ(kEvalStates, 18u);
    EXPECT_EQ(kGcStates, 29u);
}

TEST(Resource, LambdaModelMatchesPaperWithinTolerance)
{
    ResourceEstimate m = estimateResources(lambdaLayerStructure());
    ResourceEstimate p = paperLambdaLayer();
    EXPECT_LT(relErr(m.gates, p.gates), 0.05) << m.gates;
    EXPECT_LT(relErr(m.luts, p.luts), 0.05) << m.luts;
    EXPECT_LT(relErr(m.ffs, p.ffs), 0.05) << m.ffs;
    EXPECT_DOUBLE_EQ(m.cycleNs, p.cycleNs);
}

TEST(Resource, MicroBlazeModelIsInTheBallpark)
{
    ResourceEstimate m = estimateResources(mblazeStructure());
    ResourceEstimate p = paperMicroBlaze();
    // The vendor core's internals are opaque; require 25%.
    EXPECT_LT(relErr(m.luts, p.luts), 0.25) << m.luts;
    EXPECT_LT(relErr(m.ffs, p.ffs), 0.25) << m.ffs;
    EXPECT_DOUBLE_EQ(m.cycleNs, p.cycleNs);
}

TEST(Resource, RelativeClaimHolds)
{
    // "our experimental prototype uses approximately twice the
    // hardware resources" of the MicroBlaze, at half the clock.
    ResourceEstimate l = estimateResources(lambdaLayerStructure());
    ResourceEstimate m = estimateResources(mblazeStructure());
    double lutRatio = double(l.luts) / m.luts;
    EXPECT_GT(lutRatio, 1.5);
    EXPECT_LT(lutRatio, 3.5);
    EXPECT_DOUBLE_EQ(l.cycleNs, 2.0 * m.cycleNs);
}

TEST(Resource, TableRenders)
{
    std::string t = renderTable1();
    EXPECT_NE(t.find("LUTs"), std::string::npos);
    EXPECT_NE(t.find("66"), std::string::npos);
    EXPECT_NE(t.find("cycle time"), std::string::npos);
    EXPECT_NE(t.find("4337"), std::string::npos); // paper value shown
}

} // namespace
} // namespace zarf::verify
