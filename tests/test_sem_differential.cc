/**
 * @file
 * Differential testing: the eager big-step oracle (Fig. 3) and the
 * lazy small-step machine must agree on the final value of every
 * pure, terminating program. Programs are generated randomly with
 * an acyclic call graph (see fuzz/genprog.hh), covering partial
 * and over-application, higher-order calls, constructor matching,
 * and error values.
 */

#include <gtest/gtest.h>

#include "fuzz/genprog.hh"
#include "isa/binary.hh"
#include "isa/validate.hh"
#include "sem/bigstep.hh"
#include "sem/smallstep.hh"

namespace zarf
{
namespace
{

class Differential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(Differential, BigStepAgreesWithSmallStep)
{
    fuzz::ProgramGenerator gen(GetParam());
    ProgramBuilder pb = gen.generate();
    BuildResult b = pb.tryBuild();
    ASSERT_TRUE(b.ok) << b.error;
    ASSERT_TRUE(validateProgram(b.program).ok())
        << validateProgram(b.program).summary();

    // The program must also survive an encode/decode round trip.
    DecodeResult d = decodeProgram(encodeProgram(b.program));
    ASSERT_TRUE(d.ok) << d.error;

    NullBus bus1, bus2;
    BigStep bs(b.program, bus1);
    EvalResult er = bs.runMain();
    ASSERT_TRUE(er.ok()) << "bigstep: " << er.where;

    // Run the small-step engine on the *decoded* program so the
    // binary round trip is part of the differential chain.
    SmallStep ss(d.program, bus2);
    RunResult rr = ss.runMain();
    ASSERT_TRUE(rr.ok()) << "smallstep: " << rr.where;

    EXPECT_TRUE(Value::equal(*er.value, *rr.value))
        << "bigstep:  " << er.value->toString() << "\n"
        << "smallstep: " << rr.value->toString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Range(uint64_t(0), uint64_t(300)));

class DifferentialDeep : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(DifferentialDeep, LargerPrograms)
{
    fuzz::GenConfig cfg;
    cfg.numCons = 5;
    cfg.numFuncs = 10;
    cfg.maxDepth = 6;
    fuzz::ProgramGenerator gen(GetParam() * 7919 + 13, cfg);
    ProgramBuilder pb = gen.generate();
    BuildResult b = pb.tryBuild();
    ASSERT_TRUE(b.ok) << b.error;

    NullBus bus1, bus2;
    BigStep bs(b.program, bus1);
    EvalResult er = bs.runMain();
    ASSERT_TRUE(er.ok());

    SmallStep ss(b.program, bus2);
    RunResult rr = ss.runMain();
    ASSERT_TRUE(rr.ok());

    EXPECT_TRUE(Value::equal(*er.value, *rr.value))
        << "bigstep:  " << er.value->toString() << "\n"
        << "smallstep: " << rr.value->toString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialDeep,
                         ::testing::Range(uint64_t(0), uint64_t(150)));

} // namespace
} // namespace zarf
