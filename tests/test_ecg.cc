/**
 * @file
 * Synthetic ECG generator tests: determinism, morphology, rate
 * control, annotations, and the heart models' closed-loop behaviour.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "ecg/synth.hh"

namespace zarf::ecg
{
namespace
{

TEST(EcgSynth, DeterministicForSeed)
{
    EcgSynth a(42), b(42);
    for (int i = 0; i < 2000; ++i)
        EXPECT_EQ(a.nextSample(), b.nextSample());
}

TEST(EcgSynth, SeedsDiffer)
{
    EcgSynth a(1), b(2);
    int same = 0;
    for (int i = 0; i < 500; ++i)
        same += a.nextSample() == b.nextSample();
    EXPECT_LT(same, 400);
}

TEST(EcgSynth, BeatSpacingFollowsBpm)
{
    EcgSynth s(7);
    s.setBpm(100.0); // 600 ms = 120 samples
    for (int i = 0; i < 30 * 200; ++i)
        s.nextSample();
    const auto &beats = s.rPeaks();
    ASSERT_GT(beats.size(), 20u);
    double sum = 0;
    int n = 0;
    for (size_t i = 1; i < beats.size(); ++i) {
        sum += double(beats[i] - beats[i - 1]);
        ++n;
    }
    EXPECT_NEAR(sum / n, 120.0, 8.0);
}

TEST(EcgSynth, RPeakIsLocalMaximum)
{
    EcgSynth s(11, [] {
        EcgParams p;
        p.noiseSigma = 0.0; // clean signal for the shape check
        p.baselineAmpl = 0.0;
        return p;
    }());
    std::vector<SWord> sig;
    for (int i = 0; i < 2000; ++i)
        sig.push_back(s.nextSample());
    int checked = 0;
    for (uint64_t b : s.rPeaks()) {
        if (b < 10 || b + 10 >= sig.size())
            continue;
        // The window maximum lies within one sample of the
        // annotation (the R center rarely falls exactly on the
        // 5 ms grid).
        uint64_t arg = b - 10;
        for (uint64_t i = b - 10; i <= b + 10; ++i) {
            if (sig[i] > sig[arg])
                arg = i;
        }
        EXPECT_LE(std::llabs(int64_t(arg) - int64_t(b)), 1)
            << "beat at " << b;
        EXPECT_GT(sig[arg], 100); // R amplitude ~150
        ++checked;
    }
    EXPECT_GT(checked, 10);
}

TEST(EcgSynth, AmplitudeBounded)
{
    EcgSynth s(13);
    s.setBpm(190.0);
    for (int i = 0; i < 5000; ++i) {
        SWord v = s.nextSample();
        EXPECT_LE(v, 4000);
        EXPECT_GE(v, -4000);
    }
}

TEST(EcgSynth, BpmClamped)
{
    EcgSynth s(1);
    s.setBpm(1.0);
    EXPECT_GE(s.bpm(), 20.0);
    s.setBpm(10000.0);
    EXPECT_LE(s.bpm(), 300.0);
}

TEST(ScriptedHeart, FollowsSchedule)
{
    ScriptedHeart h({ { 10.0, 60.0 }, { 10.0, 180.0 } }, 5);
    for (int i = 0; i < 20 * 200; ++i)
        h.nextSample();
    EXPECT_TRUE(h.scheduleDone());
    const auto &beats = h.rPeaks();
    // Count beats in each half.
    int first = 0, second = 0;
    for (uint64_t b : beats) {
        if (b < 2000)
            ++first;
        else
            ++second;
    }
    // 10 s at 60 bpm ~ 10 beats; 10 s at 180 bpm ~ 30 beats.
    EXPECT_NEAR(first, 10, 3);
    EXPECT_NEAR(second, 30, 5);
}

TEST(ResponsiveHeart, EntersVtAtOnset)
{
    ResponsiveHeart h(5.0, 70.0, 200.0, 8, 3);
    for (int i = 0; i < 4 * 200; ++i)
        h.nextSample();
    EXPECT_FALSE(h.inVt());
    for (int i = 0; i < 3 * 200; ++i)
        h.nextSample();
    EXPECT_TRUE(h.inVt());
}

TEST(ResponsiveHeart, ConvertsAfterEnoughPulses)
{
    ResponsiveHeart h(1.0, 70.0, 200.0, 4, 3);
    for (int i = 0; i < 600; ++i)
        h.nextSample();
    ASSERT_TRUE(h.inVt());
    h.onShock(1);
    h.onShock(1);
    h.onShock(0); // non-pulse outputs don't count
    EXPECT_TRUE(h.inVt());
    h.onShock(2);
    h.onShock(1);
    EXPECT_FALSE(h.inVt());
    EXPECT_EQ(h.pulsesReceived(), 4);
    EXPECT_GT(h.convertedAt(), 0u);
}

TEST(ResponsiveHeart, PulsesBeforeVtIgnored)
{
    ResponsiveHeart h(100.0, 70.0, 200.0, 2, 3);
    for (int i = 0; i < 100; ++i)
        h.nextSample();
    h.onShock(1);
    h.onShock(1);
    EXPECT_EQ(h.pulsesReceived(), 0);
}

} // namespace
} // namespace zarf::ecg
