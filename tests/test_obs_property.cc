/**
 * @file
 * Property tests for the observability layer (docs/OBSERVABILITY.md):
 * structural invariants of recorded traces (per-track timestamp
 * monotonicity, GC begin/end pairing), agreement between the
 * FSM-state tally and the MachineStats cycle ledger, and the
 * determinism guarantees — identical traces on the predecoded and
 * word-walking paths, across repeated runs, and (for campaign
 * metrics) across worker thread counts.
 */

#include <gtest/gtest.h>

#include "fuzz/genprog.hh"
#include "common/testprogs.hh"
#include "ecg/synth.hh"
#include "fault/campaign.hh"
#include "icd/baseline.hh"
#include "icd/zarf_icd.hh"
#include "isa/encoding.hh"
#include "machine/machine.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "system/system.hh"
#include "zasm/zasm.hh"

namespace zarf
{
namespace
{

Image
randomImage(uint64_t seed)
{
    fuzz::GenConfig gcfg;
    gcfg.numCons = 4;
    gcfg.numFuncs = 6;
    gcfg.maxDepth = 5;
    fuzz::ProgramGenerator gen(seed * 2654435761u + 11, gcfg);
    BuildResult b = gen.generate().tryBuild();
    EXPECT_TRUE(b.ok) << b.error;
    return encodeProgram(b.program);
}

/** Run `img` to completion with a recorder and (optionally) the
 *  FSM tally attached. */
struct TracedRun
{
    obs::Recorder rec;
    MachineStats stats;
    FsmTally tally;
    Cycles cycles = 0;
    MachineStatus status = MachineStatus::Running;
    std::string json;

    TracedRun(const Image &img, bool predecode,
              size_t semispaceWords = 1u << 16,
              uint32_t mask = obs::kAllCats,
              size_t capacity = 1u << 20)
        : rec(obs::TraceConfig{ capacity, mask })
    {
        MachineConfig cfg;
        cfg.usePredecode = predecode;
        cfg.semispaceWords = semispaceWords;
        cfg.trace = &rec;
        cfg.fsmTally = true;
        NullBus bus;
        Machine m(img, bus, cfg);
        status = m.run().status;
        stats = m.stats();
        tally = m.fsmTally();
        cycles = m.cycles();
        json = rec.toChromeJson();
    }
};

// ------------------------------------------------------------------
// Structural invariants.
// ------------------------------------------------------------------

/** Timestamps never go backwards within a display track. GcEnd is
 *  excluded: collection runs off the mutator clock, so an end stamp
 *  (begin + pause) may legitimately exceed the next events' mutator
 *  timestamps; the pairing test below pins GcEnd down instead. */
void
expectMonotonePerTrack(const obs::Recorder &rec)
{
    Cycles last[size_t(obs::Track::NumTracks)] = {};
    bool seen[size_t(obs::Track::NumTracks)] = {};
    rec.forEach([&](const obs::Event &e) {
        if (e.kind == obs::EventKind::GcEnd)
            return;
        size_t t = size_t(obs::eventTrack(e.kind));
        if (seen[t])
            EXPECT_GE(e.ts, last[t])
                << "track " << obs::trackName(obs::Track(t))
                << " event " << obs::eventName(e.kind);
        last[t] = e.ts;
        seen[t] = true;
    });
}

class ObsMonotone : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ObsMonotone, TimestampsMonotonePerTrack)
{
    TracedRun run(randomImage(GetParam()), true);
    expectMonotonePerTrack(run.rec);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObsMonotone,
                         ::testing::Range(uint64_t(0), uint64_t(25)));

TEST(ObsProperty, GcEventsPairAndSumToGcCycles)
{
    // A tight heap on the countdown loop forces many collections.
    Image img = encodeProgram(
        assembleOrDie(testing::countdownProgramText()));
    TracedRun run(img, true, 1u << 14,
                  uint32_t(obs::Cat::MachineGc));
    ASSERT_EQ(run.status, MachineStatus::Done);
    ASSERT_GT(run.stats.gcRuns, 0u);

    uint64_t begins = 0, ends = 0;
    Cycles pauseSum = 0;
    bool open = false;
    Cycles openTs = 0;
    run.rec.forEach([&](const obs::Event &e) {
        if (e.kind == obs::EventKind::GcBegin) {
            EXPECT_FALSE(open) << "nested GcBegin";
            open = true;
            openTs = e.ts;
            ++begins;
        } else if (e.kind == obs::EventKind::GcEnd) {
            ASSERT_TRUE(open) << "GcEnd without GcBegin";
            open = false;
            // End stamps begin + pause so the Perfetto slice spans
            // the pause even though GC runs off the mutator clock.
            EXPECT_EQ(e.ts, openTs + Cycles(e.b));
            pauseSum += Cycles(e.b);
            ++ends;
        }
    });
    EXPECT_FALSE(open) << "unclosed GcBegin";
    EXPECT_EQ(begins, run.stats.gcRuns);
    EXPECT_EQ(ends, run.stats.gcRuns);
    EXPECT_EQ(pauseSum, run.stats.gcCycles);
}

class ObsTally : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ObsTally, TallyPartitionsTheCycleLedger)
{
    // The per-state tally must partition the ledger exactly: its
    // group sums equal the MachineStats totals, and the machine
    // clock carries load + exec only (GC runs off the clock).
    TracedRun run(randomImage(GetParam()), true, 1u << 14);
    EXPECT_EQ(run.tally.loadCycles(), run.stats.loadCycles);
    EXPECT_EQ(run.tally.execCycles(), run.stats.execCycles);
    EXPECT_EQ(run.tally.gcCycles(), run.stats.gcCycles);
    EXPECT_EQ(run.cycles, run.stats.loadCycles + run.stats.execCycles);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObsTally,
                         ::testing::Range(uint64_t(0), uint64_t(25)));

// ------------------------------------------------------------------
// Determinism.
// ------------------------------------------------------------------

class ObsPathIdentical : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(ObsPathIdentical, TraceIdenticalAcrossExecutionPaths)
{
    // The µop and word-walking paths must emit byte-identical traces:
    // every event at the same cycle with the same arguments. (Events
    // deliberately carry function ids, never word/µop positions.)
    Image img = randomImage(GetParam());
    TracedRun uop(img, true, 1u << 14);
    TracedRun ref(img, false, 1u << 14);
    ASSERT_EQ(uop.status, ref.status);
    EXPECT_EQ(uop.rec.emitted(), ref.rec.emitted());
    EXPECT_EQ(uop.json, ref.json);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObsPathIdentical,
                         ::testing::Range(uint64_t(0), uint64_t(25)));

TEST(ObsProperty, RepeatedSystemRunsAreByteIdentical)
{
    // Two co-simulations of the same seed — trace and metrics JSON
    // byte-identical, including across a watchdog restart.
    auto once = [](std::string &traceJson, std::string &metricsJson) {
        ecg::ScriptedHeart heart({ { 600.0, 75.0 } }, 42);
        sys::SystemConfig cfg;
        cfg.fallbackProgram = icd::baselineIcdProgram();
        cfg.faultPlan.events.push_back(
            { 25'000'000, fault::FaultKind::HeapSeuDouble, 1,
              0x0102 });
        cfg.lambdaFsmTally = true;
        obs::TraceConfig tcfg;
        tcfg.mask = uint32_t(obs::Cat::System) |
                    uint32_t(obs::Cat::MachineLife) |
                    uint32_t(obs::Cat::MachineGc);
        obs::Recorder rec(tcfg);
        cfg.trace = &rec;
        sys::TwoLayerSystem system(icd::buildKernelImage(),
                                   icd::monitorProgram(), heart,
                                   cfg);
        system.runForMs(600.0);
        EXPECT_EQ(system.watchdogRestarts(), 1u);
        traceJson = rec.toChromeJson();
        obs::Metrics m;
        system.exportMetrics(m);
        metricsJson = m.toJson();
    };
    std::string t1, m1, t2, m2;
    once(t1, m1);
    once(t2, m2);
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(m1, m2);
    EXPECT_FALSE(t1.empty());
    EXPECT_FALSE(m1.empty());
}

TEST(ObsProperty, CampaignMetricsIndependentOfThreadCount)
{
    fault::CampaignConfig cfg;
    cfg.scenarios = 8;
    cfg.seedBase = 3;
    cfg.threads = 1;
    fault::CampaignReport serial = fault::runCampaign(cfg);
    cfg.threads = 3;
    fault::CampaignReport parallel = fault::runCampaign(cfg);
    EXPECT_EQ(serial.metricsJson(), parallel.metricsJson());
    EXPECT_EQ(serial.toJson(), parallel.toJson());
}

// ------------------------------------------------------------------
// Metrics registry.
// ------------------------------------------------------------------

TEST(ObsProperty, MetricsJsonIsSortedAndStable)
{
    obs::Metrics m;
    m.setCounter("z.last", 3);
    m.setCounter("a.first", 1);
    m.setGauge("depth", -4);
    m.addBucket("states", "load", 7);
    m.addBucket("states", "exec", 9);
    std::string json = m.toJson();
    // Counters render sorted regardless of insertion order;
    // histogram buckets keep insertion order.
    EXPECT_LT(json.find("a.first"), json.find("z.last"));
    EXPECT_LT(json.find("\"load\""), json.find("\"exec\""));
    EXPECT_NE(json.find("\"depth\": -4"), std::string::npos);
    // Rendering twice is identical.
    EXPECT_EQ(json, m.toJson());
}

TEST(ObsProperty, RecorderDropsOldestAndCounts)
{
    obs::Recorder rec(obs::TraceConfig{ 4, obs::kAllCats });
    for (int i = 0; i < 10; ++i)
        rec.emit(obs::EventKind::TickConsumed, Cycles(i), i, 0);
    EXPECT_EQ(rec.size(), 4u);
    EXPECT_EQ(rec.emitted(), 10u);
    EXPECT_EQ(rec.dropped(), 6u);
    // The oldest held event is #6 — the newest window survives.
    EXPECT_EQ(rec.at(0).a, 6);
    EXPECT_EQ(rec.at(3).a, 9);
}

} // namespace
} // namespace zarf
