/**
 * @file
 * Corpus robustness (docs/RESILIENCE.md, "Harness resilience"): a
 * truncated or corrupt on-disk .zimg seed is warned about and
 * skipped — never aborts a campaign — and saving into an unwritable
 * corpus directory degrades to a warning with an empty path.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "fuzz/corpus.hh"
#include "fuzz/genprog.hh"

namespace zarf::fuzz
{
namespace
{

namespace fs = std::filesystem;

fs::path
scratchDir(const char *name)
{
    fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

Image
smallImage(uint64_t seed)
{
    GenConfig gcfg;
    gcfg.numCons = 3;
    gcfg.numFuncs = 4;
    gcfg.maxDepth = 4;
    ProgramGenerator gen(seed, gcfg);
    BuildResult b = gen.generate().tryBuild();
    EXPECT_TRUE(b.ok) << b.error;
    return encodeProgram(b.program);
}

void
writeFile(const fs::path &p, const std::string &text)
{
    std::ofstream out(p, std::ios::binary);
    out.write(text.data(), std::streamsize(text.size()));
}

TEST(Corpus, TextRoundTripIsExact)
{
    Image img = smallImage(42);
    ParsedImage parsed = imageFromText(imageToText(img));
    ASSERT_TRUE(parsed.ok) << parsed.error;
    EXPECT_EQ(parsed.image, img);
    EXPECT_EQ(imageHash(parsed.image), imageHash(img));
}

TEST(Corpus, TruncatedAndCorruptSeedsAreSkippedNotFatal)
{
    fs::path dir = scratchDir("corpus-damaged");
    Image img = smallImage(7);
    std::string text = imageToText(img);

    // One good entry.
    writeFile(dir / (hashName(imageHash(img)) + ".zimg"), text);

    // A byte-truncated copy: cut inside a "0x" prefix so the last
    // line is no longer a word. (The rendering is one "0x%08x\n"
    // per line, so backing up 10 bytes from the end lands mid-line.)
    ASSERT_GT(text.size(), 12u);
    std::string truncated = text.substr(0, text.size() - 10);
    ASSERT_EQ(truncated.back(), '0');
    writeFile(dir / "1111111111111111.zimg", truncated);

    // Outright corrupt content.
    writeFile(dir / "2222222222222222.zimg", "0xZZZZZZZZ\n");

    CorpusLoad load = loadCorpusDir(dir.string());
    // The damage is reported, the good entry survives, nothing
    // threw or aborted.
    ASSERT_EQ(load.entries.size(), 1u);
    EXPECT_EQ(load.entries[0].hash, imageHash(img));
    EXPECT_EQ(load.entries[0].image, img);
    ASSERT_EQ(load.errors.size(), 2u);
    for (const std::string &e : load.errors)
        EXPECT_NE(e.find("expected one 0x"), std::string::npos) << e;
}

TEST(Corpus, MissingDirectoryIsAnErrorNotACrash)
{
    fs::path dir = scratchDir("corpus-missing");
    CorpusLoad load =
        loadCorpusDir((dir / "never-created").string());
    EXPECT_TRUE(load.entries.empty());
    // Either reported as an error or silently empty, but alive.
}

TEST(Corpus, SaveIntoUnwritableDirectoryWarnsAndReturnsEmpty)
{
    fs::path dir = scratchDir("corpus-unwritable");
    fs::path blocker = dir / "file.txt";
    writeFile(blocker, "a regular file where a directory is needed");

    Image img = smallImage(3);
    // The parent of the corpus dir is a regular file: directory
    // creation must fail, the save must degrade to "" — the fuzz
    // CLI then skips recording the path and keeps running.
    std::string saved =
        saveCorpusEntry((blocker / "corpus").string(), img);
    EXPECT_EQ(saved, "");

    // The corpus dir itself being a regular file fails the same way.
    EXPECT_EQ(saveCorpusEntry(blocker.string(), img), "");
}

TEST(Corpus, SaveThenLoadRoundTrips)
{
    fs::path dir = scratchDir("corpus-save");
    Image img = smallImage(12);
    std::string path = saveCorpusEntry(dir.string(), img);
    ASSERT_NE(path, "");
    EXPECT_TRUE(fs::exists(path));
    // Idempotent: same content, same address.
    EXPECT_EQ(saveCorpusEntry(dir.string(), img), path);

    CorpusLoad load = loadCorpusDir(dir.string());
    ASSERT_EQ(load.entries.size(), 1u);
    EXPECT_TRUE(load.errors.empty());
    EXPECT_EQ(load.entries[0].image, img);
}

} // namespace
} // namespace zarf::fuzz
