/**
 * @file
 * Assembler tests: parse/print round trips, located parse errors,
 * lowering errors, and disassembly of binaries.
 */

#include <gtest/gtest.h>

#include "common/testprogs.hh"
#include "isa/binary.hh"
#include "isa/validate.hh"
#include "zasm/zasm.hh"

namespace zarf
{
namespace
{

TEST(Zasm, ParsesMapProgram)
{
    ParseResult r = parseAssembly(testing::mapProgramText());
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.builder.decls().size(), 6u);
    EXPECT_TRUE(r.builder.decls()[0].isCons);
    EXPECT_EQ(r.builder.decls()[0].name, "Nil");
    EXPECT_EQ(r.builder.decls()[3].name, "addOne");
}

TEST(Zasm, PrintParseRoundTrip)
{
    for (const std::string &text : { testing::mapProgramText(),
                                     testing::churchProgramText(),
                                     testing::countdownProgramText(),
                                     testing::ioEchoProgramText() }) {
        ParseResult r1 = parseAssembly(text);
        ASSERT_TRUE(r1.ok) << r1.error;
        std::string printed = printAssembly(r1.builder);
        ParseResult r2 = parseAssembly(printed);
        ASSERT_TRUE(r2.ok) << r2.error << "\n" << printed;
        // The two must lower to identical programs.
        BuildResult b1 = r1.builder.tryBuild();
        BuildResult b2 = r2.builder.tryBuild();
        ASSERT_TRUE(b1.ok && b2.ok);
        EXPECT_EQ(encodeProgram(b1.program), encodeProgram(b2.program));
    }
}

TEST(Zasm, ReportsLocatedParseError)
{
    ParseResult r = parseAssembly("fun main =\n  let = add 1 2\n");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("2:"), std::string::npos) << r.error;
}

TEST(Zasm, RejectsMissingElse)
{
    ParseResult r = parseAssembly(R"(
fun main =
  case 1 of
    0 =>
      result 1
)");
    EXPECT_FALSE(r.ok);
}

TEST(Zasm, RejectsUnboundVariable)
{
    ParseResult r = parseAssembly("fun main =\n  result nope\n");
    ASSERT_TRUE(r.ok);
    BuildResult b = r.builder.tryBuild();
    ASSERT_FALSE(b.ok);
    EXPECT_NE(b.error.find("nope"), std::string::npos);
}

TEST(Zasm, RejectsPrimShadowing)
{
    ParseResult r = parseAssembly(
        "fun main =\n  result 0\nfun add a b =\n  result a\n");
    ASSERT_TRUE(r.ok);
    BuildResult b = r.builder.tryBuild();
    EXPECT_FALSE(b.ok);
}

TEST(Zasm, RejectsDuplicateNames)
{
    ParseResult r = parseAssembly(
        "fun main =\n  result 0\nfun f a =\n  result a\n"
        "fun f a =\n  result a\n");
    ASSERT_TRUE(r.ok);
    EXPECT_FALSE(r.builder.tryBuild().ok);
}

TEST(Zasm, RejectsWrongPatternFieldCount)
{
    ParseResult r = parseAssembly(R"(
con Pair a b
fun main =
  let p = Pair 1 2
  case p of
    Pair x =>
      result x
  else
    result 0
)");
    ASSERT_TRUE(r.ok);
    BuildResult b = r.builder.tryBuild();
    EXPECT_FALSE(b.ok);
}

TEST(Zasm, RejectsMainWithParams)
{
    ParseResult r = parseAssembly("fun main x =\n  result x\n");
    ASSERT_TRUE(r.ok);
    EXPECT_FALSE(r.builder.tryBuild().ok);
}

TEST(Zasm, CommentsAndWhitespaceIgnored)
{
    Program p = assembleOrDie(
        "# leading comment\nfun main = # trailing\n"
        "  let x = add 1 2 # comment\n  result x\n");
    EXPECT_EQ(p.decls.size(), 1u);
}

TEST(Zasm, ShadowingParamWithLocalIsAllowed)
{
    // A let may rebind a name; later uses see the local.
    Program p = assembleOrDie(R"(
fun main =
  let r = f 5
  result r
fun f x =
  let x = add x 1
  result x
)");
    EXPECT_TRUE(validateProgram(p).ok());
    const Decl &f = p.decls[1];
    // The result must reference local 0, not arg 0.
    const Expr *e = f.body.get();
    ASSERT_TRUE(e->isLet());
    const Expr *res = e->asLet().body.get();
    ASSERT_TRUE(res->isResult());
    EXPECT_EQ(res->asResult().value.src, Src::Local);
}

TEST(Zasm, DisassembleMentionsEveryFunction)
{
    Program p = assembleOrDie(testing::mapProgramText());
    std::string d = disassemble(p);
    for (const char *n : { "Nil", "Cons", "main", "map", "sumList" })
        EXPECT_NE(d.find(n), std::string::npos) << n;
    // Machine-form operands appear.
    EXPECT_NE(d.find("arg0"), std::string::npos);
    EXPECT_NE(d.find("local0"), std::string::npos);
}

TEST(Zasm, DisassembleDecodedBinary)
{
    // Binary carries no names; disassembly synthesizes them.
    Program p = assembleOrDie(testing::mapProgramText());
    Program q = decodeProgramOrDie(encodeProgram(p));
    std::string d = disassemble(q);
    EXPECT_NE(d.find("main"), std::string::npos);
    EXPECT_NE(d.find("fn_0x"), std::string::npos);
    EXPECT_NE(d.find("con_0x"), std::string::npos);
}

TEST(Zasm, LocalsNumberingMatchesFootnote)
{
    // Fig. 4 footnote: pattern-bound fields take the next local
    // slots; subsequent lets continue from there.
    Program p = assembleOrDie(R"(
con Cons head tail
con Nil
fun main =
  result 0
fun f list =
  case list of
    Cons h t =>
      let s = add h 1
      result s
  else
    result 0
)");
    const Decl &f = p.decls[3];
    EXPECT_EQ(f.numLocals, 3u); // h, t, s on the cons path
    const Case &c = f.body->asCase();
    const Let &l = c.branches[0].body->asLet();
    // `add h 1`: h is local 0; the bound s is local 2.
    EXPECT_EQ(l.args[0], opLocal(0));
    const Result &r = l.body->asResult().value.src == Src::Local
                          ? l.body->asResult()
                          : l.body->asResult();
    EXPECT_EQ(r.value, opLocal(2));
}

} // namespace
} // namespace zarf
