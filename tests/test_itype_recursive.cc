/**
 * @file
 * Integrity typing with recursive data types: the prelude's list
 * functions are typed with List = Nil | Cons(num^ℓ, List^ℓ),
 * demonstrating self-referential DataDecls, at both trust levels.
 *
 * A documented limitation of the (monomorphic, as in the paper)
 * checker shows up naturally here: a constructor belongs to exactly
 * one data type, so `Cons` cannot simultaneously build a list of
 * numbers and a list of pairs — `lookupL`, which pattern-matches
 * `Pair` inside a generic list, is therefore untypeable under this
 * instantiation and must be the only function reported.
 */

#include <gtest/gtest.h>

#include "verify/itype.hh"
#include "zasm/prelude.hh"
#include "zasm/zasm.hh"

namespace zarf::verify
{
namespace
{

struct PreludeTyping
{
    Program p;
    TypeEnv env;
    int dList = -1;
    int dPair = -1;
    int dOpt = -1;

    Word
    id(const char *name) const
    {
        int i = p.findByName(name);
        EXPECT_GE(i, 0) << name;
        return Program::idOf(size_t(std::max(i, 0)));
    }
};

/** Type the whole prelude at element-trust ℓ. */
PreludeTyping
makeTyping(Label l)
{
    PreludeTyping t;
    t.p = assembleOrDie(std::string("fun main =\n  result 0\n") +
                        preludeText());

    // Recursive list: the Cons tail field references the list's own
    // dataId, registered before the fields are filled in.
    t.dList = t.env.addData(DataDecl{ "List", {} });
    t.dPair = t.env.addData(DataDecl{ "Pair", {} });
    t.dOpt = t.env.addData(DataDecl{ "Option", {} });
    ITypePtr n = tNum(l);
    ITypePtr list = tData(t.dList, l);
    ITypePtr pair = tData(t.dPair, l);
    ITypePtr opt = tData(t.dOpt, l);
    t.env.datas[size_t(t.dList)].conses[t.id("Nil")] = {};
    t.env.datas[size_t(t.dList)].conses[t.id("Cons")] = { n, list };
    t.env.datas[size_t(t.dPair)].conses[t.id("Pair")] = { n, n };
    t.env.datas[size_t(t.dOpt)].conses[t.id("None")] = {};
    t.env.datas[size_t(t.dOpt)].conses[t.id("Some")] = { n };

    ITypePtr n2n = tFun({ n }, n, l);
    ITypePtr n2n2n = tFun({ n, n }, n, l);
    auto fn = [&](const char *name, std::vector<ITypePtr> ps,
                  ITypePtr r) {
        t.env.funs[t.id(name)] = FunSig{ std::move(ps),
                                         std::move(r) };
    };
    fn("main", {}, tNum(Label::T));
    fn("id", { n }, n);
    fn("constK", { n, n }, n);
    fn("compose", { n2n, n2n, n }, n);
    fn("flip", { n2n2n, n, n }, n);
    fn("applyFn", { n2n, n }, n);
    fn("bnot01", { n }, n);
    fn("fst", { pair }, n);
    fn("snd", { pair }, n);
    fn("fromSome", { n, opt }, n);
    fn("length", { list }, n);
    fn("append", { list, list }, list);
    fn("revHelp", { list, list }, list);
    fn("reverse", { list }, list);
    fn("mapL", { n2n, list }, list);
    fn("filterL", { n2n, list }, list);
    fn("foldl", { n2n2n, n, list }, n);
    fn("foldr", { n2n2n, n, list }, n);
    fn("take", { n, list }, list);
    fn("drop", { n, list }, list);
    fn("rangeL", { n, n }, list);
    fn("replicate", { n, n }, list);
    fn("sum", { list }, n);
    fn("addF", { n, n }, n);
    fn("product", { list }, n);
    fn("mulF", { n, n }, n);
    fn("maximumL", { list }, opt);
    fn("maxF", { n, n }, n);
    fn("elemL", { n, list }, n);
    fn("nth", { n, list }, opt);
    fn("zipWith", { n2n2n, list, list }, list);
    fn("allL", { n2n, list }, n);
    fn("anyL", { n2n, list }, n);
    fn("lookupL", { n, list }, opt); // untypeable body; see above
    return t;
}

void
expectOnlyLookupLErrors(const ITypeReport &r)
{
    EXPECT_FALSE(r.errors.empty())
        << "lookupL should be untypeable here";
    for (const auto &e : r.errors)
        EXPECT_EQ(e.where, "lookupL") << e.where << ": " << e.what;
}

TEST(ITypeRecursive, PreludeWellTypedTrusted)
{
    PreludeTyping t = makeTyping(Label::T);
    expectOnlyLookupLErrors(checkIntegrity(t.p, t.env));
}

TEST(ITypeRecursive, PreludeWellTypedUntrusted)
{
    PreludeTyping t = makeTyping(Label::U);
    expectOnlyLookupLErrors(checkIntegrity(t.p, t.env));
}

TEST(ITypeRecursive, TrustedResultFromUntrustedListRejected)
{
    // sum over an untrusted list cannot produce a trusted number.
    PreludeTyping t = makeTyping(Label::U);
    t.env.funs[t.id("sum")] =
        FunSig{ { tData(t.dList, Label::U) }, tNum(Label::T) };
    ITypeReport r = checkIntegrity(t.p, t.env);
    bool sumError = false;
    for (const auto &e : r.errors)
        sumError |= e.where == "sum";
    EXPECT_TRUE(sumError) << r.summary();
}

TEST(ITypeRecursive, RecursiveFieldReferencesItsOwnType)
{
    // Direct algebra check: Cons's tail field *is* the list type.
    PreludeTyping t = makeTyping(Label::T);
    const auto &fields =
        t.env.datas[size_t(t.dList)].conses.at(t.id("Cons"));
    ASSERT_EQ(fields.size(), 2u);
    EXPECT_EQ(fields[1]->kind, IType::Kind::Data);
    EXPECT_EQ(fields[1]->dataId, t.dList);
}

} // namespace
} // namespace zarf::verify
