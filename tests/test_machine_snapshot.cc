/**
 * @file
 * Differential testing of the campaign-scale fast paths
 * (docs/PERF.md, "Campaign-scale execution"): machines constructed
 * from a shared LoadedImage, machines forked from a snapshot, and
 * campaigns run under every LoadStrategy must be bit-identical to
 * the cold paths — results, total cycles, every statistic, the
 * per-FSM-state tally, trace events, and campaign JSON — on random
 * programs, under GC pressure, and on the full two-layer system.
 */

#include <gtest/gtest.h>

#include "fuzz/genprog.hh"
#include "ecg/synth.hh"
#include "fault/campaign.hh"
#include "fault/plan.hh"
#include "icd/baseline.hh"
#include "icd/zarf_icd.hh"
#include "isa/binary.hh"
#include "isa/encoding.hh"
#include "machine/loaded_image.hh"
#include "machine/machine.hh"
#include "obs/trace.hh"
#include "system/system.hh"

namespace zarf
{
namespace
{

/** Require every statistic to be identical between two machines. */
void
expectStatsEqual(const MachineStats &a, const MachineStats &b)
{
    EXPECT_EQ(a.let.count, b.let.count);
    EXPECT_EQ(a.let.cycles, b.let.cycles);
    EXPECT_EQ(a.caseInstr.count, b.caseInstr.count);
    EXPECT_EQ(a.caseInstr.cycles, b.caseInstr.cycles);
    EXPECT_EQ(a.result.count, b.result.count);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.branchHeads, b.branchHeads);
    EXPECT_EQ(a.letArgs, b.letArgs);
    EXPECT_EQ(a.allocations, b.allocations);
    EXPECT_EQ(a.allocatedWords, b.allocatedWords);
    EXPECT_EQ(a.forces, b.forces);
    EXPECT_EQ(a.whnfHits, b.whnfHits);
    EXPECT_EQ(a.updates, b.updates);
    EXPECT_EQ(a.errorsCreated, b.errorsCreated);
    EXPECT_EQ(a.loadCycles, b.loadCycles);
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.callsPerFunc, b.callsPerFunc);
    EXPECT_EQ(a.gcRuns, b.gcRuns);
    EXPECT_EQ(a.gcCycles, b.gcCycles);
    EXPECT_EQ(a.gcObjectsCopied, b.gcObjectsCopied);
    EXPECT_EQ(a.gcWordsCopied, b.gcWordsCopied);
    EXPECT_EQ(a.gcRefChecks, b.gcRefChecks);
    EXPECT_EQ(a.gcMaxLiveWords, b.gcMaxLiveWords);
    EXPECT_EQ(a.gcMaxPauseCycles, b.gcMaxPauseCycles);
}

void
expectTallyEqual(const FsmTally &a, const FsmTally &b)
{
    EXPECT_EQ(a.visits, b.visits);
    EXPECT_EQ(a.cycles, b.cycles);
}

void
expectOutcomeEqual(const Machine::Outcome &a,
                   const Machine::Outcome &b)
{
    ASSERT_EQ(a.status, b.status)
        << "a: " << a.diagnostic << "\nb: " << b.diagnostic;
    EXPECT_EQ(a.diagnostic, b.diagnostic);
    if (a.status == MachineStatus::Done) {
        ASSERT_TRUE(a.value && b.value);
        EXPECT_TRUE(Value::equal(*a.value, *b.value))
            << "a: " << a.value->toString() << "\n"
            << "b: " << b.value->toString();
    }
}

std::vector<obs::Event>
collect(const obs::Recorder &rec)
{
    std::vector<obs::Event> out;
    out.reserve(rec.size());
    rec.forEach([&](const obs::Event &e) { out.push_back(e); });
    return out;
}

/**
 * The fork's post-restore events must be the source's post-snapshot
 * events. `forkPre` is how many events the fork had already emitted
 * before restore() (its own modelled load during construction) —
 * those precede the adopted timeline and are skipped. The remaining
 * trailing min(|a|,|b|) events must agree exactly (ring buffers
 * hold the most recent window, so suffixes are the comparable
 * part).
 */
void
expectTraceSuffixEqual(const obs::Recorder &a,
                       const obs::Recorder &b, size_t forkPre = 0)
{
    std::vector<obs::Event> ea = collect(a), eb = collect(b);
    ASSERT_LE(forkPre, eb.size());
    eb.erase(eb.begin(), eb.begin() + ptrdiff_t(forkPre));
    size_t n = std::min(ea.size(), eb.size());
    for (size_t i = 0; i < n; ++i) {
        const obs::Event &x = ea[ea.size() - n + i];
        const obs::Event &y = eb[eb.size() - n + i];
        ASSERT_EQ(x.ts, y.ts) << "event " << i;
        ASSERT_EQ(x.a, y.a) << "event " << i;
        ASSERT_EQ(x.b, y.b) << "event " << i;
        ASSERT_EQ(x.kind, y.kind) << "event " << i;
    }
}

MachineConfig
snapConfig(size_t semispaceWords, obs::Recorder *rec)
{
    MachineConfig cfg;
    cfg.semispaceWords = semispaceWords;
    cfg.fsmTally = true;
    cfg.trace = rec;
    return cfg;
}

Image
randomImage(uint64_t seed)
{
    fuzz::GenConfig gcfg;
    gcfg.numCons = 4;
    gcfg.numFuncs = 7;
    gcfg.maxDepth = 5;
    fuzz::ProgramGenerator gen(seed * 2654435761u + 7, gcfg);
    BuildResult b = gen.generate().tryBuild();
    EXPECT_TRUE(b.ok) << b.error;
    return encodeProgram(b.program);
}

/**
 * Three machines over one shared LoadedImage:
 *   fresh  — runs start to finish;
 *   source — runs a prefix, snapshots, then finishes;
 *   fork   — a new machine that adopts the snapshot mid-run.
 * All three must agree on outcome, cycles, stats, and tally; the
 * fork's trace must be exactly the source's post-snapshot events.
 */
void
forkDifferential(uint64_t seed, size_t semispaceWords)
{
    Image img = randomImage(seed);
    auto li = LoadedImage::load(img);

    obs::Recorder recFresh;
    NullBus busFresh;
    Machine fresh(li, busFresh,
                  snapConfig(semispaceWords, &recFresh));
    Machine::Outcome oFresh = fresh.run();

    obs::Recorder recSource;
    NullBus busSource;
    Machine source(li, busSource,
                   snapConfig(semispaceWords, &recSource));
    source.advance(fresh.cycles() / 2);
    std::shared_ptr<const MachineSnapshot> snap = source.snapshot();

    obs::Recorder recFork;
    NullBus busFork;
    Machine fork(li, busFork, snapConfig(semispaceWords, &recFork));
    size_t forkPre = recFork.size(); // its own load events
    fork.restore(*snap);
    EXPECT_EQ(fork.cycles(), source.cycles());

    Machine::Outcome oFork = fork.run();
    Machine::Outcome oSource = source.run();

    expectOutcomeEqual(oFresh, oSource);
    expectOutcomeEqual(oFresh, oFork);
    EXPECT_EQ(fresh.cycles(), source.cycles());
    EXPECT_EQ(fresh.cycles(), fork.cycles());
    expectStatsEqual(fresh.stats(), source.stats());
    expectStatsEqual(fresh.stats(), fork.stats());
    expectTallyEqual(fresh.fsmTally(), source.fsmTally());
    expectTallyEqual(fresh.fsmTally(), fork.fsmTally());

    // Past its own load, the fork emits only what the source had
    // left to emit.
    EXPECT_LE(recFork.emitted() - forkPre, recSource.emitted());
    expectTraceSuffixEqual(recSource, recFork, forkPre);
}

class SnapshotFork : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SnapshotFork, BitIdenticalOnRandomPrograms)
{
    forkDifferential(GetParam(), 1u << 20);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotFork,
                         ::testing::Range(uint64_t(0),
                                          uint64_t(40)));

class SnapshotForkGc : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(SnapshotForkGc, BitIdenticalUnderGcPressure)
{
    // A heap barely above the safe-point margin forces frequent
    // collections, so snapshots capture mid-GC-era heap layouts —
    // forwarding state, both semispaces, slack — exactly.
    forkDifferential(GetParam(), 3 * 4096);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotForkGc,
                         ::testing::Range(uint64_t(0),
                                          uint64_t(20)));

TEST(SnapshotRoundTrip, SelfRestoreIsInvisible)
{
    // Straight run vs run-to-T / snapshot / restore-into-self /
    // continue: the round trip must not perturb a single event.
    Image img = randomImage(11);
    auto li = LoadedImage::load(img);

    obs::Recorder recA;
    NullBus busA;
    Machine straight(li, busA, snapConfig(1u << 16, &recA));
    Machine::Outcome oa = straight.run();

    obs::Recorder recB;
    NullBus busB;
    Machine rt(li, busB, snapConfig(1u << 16, &recB));
    rt.advance(straight.cycles() / 3);
    std::shared_ptr<const MachineSnapshot> snap = rt.snapshot();
    rt.restore(*snap);
    Machine::Outcome ob = rt.run();

    expectOutcomeEqual(oa, ob);
    EXPECT_EQ(straight.cycles(), rt.cycles());
    expectStatsEqual(straight.stats(), rt.stats());
    expectTallyEqual(straight.fsmTally(), rt.fsmTally());
    EXPECT_EQ(recA.emitted(), recB.emitted());
    EXPECT_EQ(recA.toChromeJson(), recB.toChromeJson());
}

TEST(SnapshotLoadedImage, SharedArtifactMatchesRawImageCtor)
{
    for (uint64_t seed : { 1u, 5u, 23u }) {
        Image img = randomImage(seed);
        auto li = LoadedImage::load(img);

        NullBus busRaw, busLi;
        MachineConfig cfg;
        cfg.fsmTally = true;
        Machine raw(img, busRaw, cfg);
        Machine shared(li, busLi, cfg);
        Machine::Outcome oRaw = raw.run();
        Machine::Outcome oLi = shared.run();

        expectOutcomeEqual(oRaw, oLi);
        EXPECT_EQ(raw.cycles(), shared.cycles());
        expectStatsEqual(raw.stats(), shared.stats());
        expectTallyEqual(raw.fsmTally(), shared.fsmTally());
    }
}

// ----------------------------------------------------------------
// Two-layer system snapshot/restore
// ----------------------------------------------------------------

TEST(SystemSnapshot, RoundTripPreservesEveryTraceEvent)
{
    Image img = icd::buildKernelImage();
    auto li = LoadedImage::load(img);
    mblaze::MbProgram monitor = icd::monitorProgram();
    mblaze::MbProgram fallback = icd::baselineIcdProgram();

    // A sensor fault mid-window so the round trip carries live
    // fault-effect latches and a consumed fault RNG, not just the
    // quiescent state.
    fault::FaultPlan plan = fault::singleKindPlan(
        fault::FaultKind::SensorNoise, 3,
        fault::FaultWindow{ 8'000'000, 18'000'000 }, 1);

    auto mkSystem = [&](obs::Recorder *rec, ecg::Heart &heart)
        -> sys::TwoLayerSystem {
        sys::SystemConfig scfg;
        scfg.fallbackProgram = fallback;
        scfg.faultPlan = plan;
        scfg.trace = rec;
        return sys::TwoLayerSystem(li, monitor, heart, scfg);
    };

    ecg::ScriptedHeart heartA({ { 600.0, 75.0 } }, 42);
    obs::Recorder recA;
    sys::TwoLayerSystem a = mkSystem(&recA, heartA);
    a.runUntil(20'000'000); // 0.4 s

    ecg::ScriptedHeart heartB({ { 600.0, 75.0 } }, 42);
    obs::Recorder recB;
    sys::TwoLayerSystem b = mkSystem(&recB, heartB);
    b.runUntil(12'000'000); // inside the fault window
    std::shared_ptr<const sys::SystemSnapshot> snap = b.snapshot();
    b.restore(*snap);
    b.runUntil(20'000'000);

    EXPECT_EQ(a.lambdaCycles(), b.lambdaCycles());
    EXPECT_EQ(recA.emitted(), recB.emitted());
    EXPECT_EQ(recA.toChromeJson(), recB.toChromeJson());
    EXPECT_EQ(a.shocks().size(), b.shocks().size());
    EXPECT_EQ(a.sensorAlerts().size(), b.sensorAlerts().size());
    EXPECT_EQ(a.persistedEpisodes(), b.persistedEpisodes());
    EXPECT_EQ(a.watchdogRestarts(), b.watchdogRestarts());
}

TEST(SystemSnapshot, WarmForkMatchesColdRunUnderFaults)
{
    // The campaign's Fork strategy in miniature: a fault-free golden
    // run donates its state at the fault window's start; a forked
    // system with its own fault plan must match a cold faulted run.
    Image img = icd::buildKernelImage();
    auto li = LoadedImage::load(img);
    mblaze::MbProgram monitor = icd::monitorProgram();
    mblaze::MbProgram fallback = icd::baselineIcdProgram();

    constexpr Cycles kWindowBegin = 15'000'000;
    constexpr Cycles kEnd = 30'000'000; // 0.6 s
    fault::FaultPlan plan = fault::singleKindPlan(
        fault::FaultKind::HeapSeu, 77,
        fault::FaultWindow{ kWindowBegin, kEnd }, 1);

    // Cold reference.
    ecg::ScriptedHeart heartCold({ { 600.0, 75.0 } }, 42);
    obs::Recorder recCold;
    sys::SystemConfig scfg;
    scfg.fallbackProgram = fallback;
    scfg.faultPlan = plan;
    scfg.trace = &recCold;
    sys::TwoLayerSystem cold(li, monitor, heartCold, scfg);
    cold.runUntil(kEnd);

    // Fault-free warm donor.
    ecg::ScriptedHeart heartWarm({ { 600.0, 75.0 } }, 42);
    sys::SystemConfig warmCfg;
    warmCfg.fallbackProgram = fallback;
    sys::TwoLayerSystem donor(li, monitor, heartWarm, warmCfg);
    donor.runUntil(kWindowBegin);
    std::shared_ptr<const sys::SystemSnapshot> warm =
        donor.snapshot();
    std::unique_ptr<ecg::Heart> heartFork = heartWarm.clone();
    ASSERT_TRUE(heartFork);

    obs::Recorder recFork;
    scfg.trace = &recFork;
    sys::TwoLayerSystem fork(li, monitor, *heartFork, scfg);
    size_t forkPre = recFork.size(); // its own load events
    fork.restore(*warm);
    fork.runUntil(kEnd);

    EXPECT_EQ(cold.lambdaCycles(), fork.lambdaCycles());
    EXPECT_EQ(cold.shocks().size(), fork.shocks().size());
    EXPECT_EQ(cold.sensorAlerts().size(),
              fork.sensorAlerts().size());
    EXPECT_EQ(cold.persistedEpisodes(), fork.persistedEpisodes());
    EXPECT_EQ(cold.watchdogRestarts(), fork.watchdogRestarts());
    EXPECT_EQ(cold.eccCorrectedFaults(), fork.eccCorrectedFaults());
    EXPECT_EQ(cold.eccUncorrectableFaults(),
              fork.eccUncorrectableFaults());
    // Past its own load, the fork emits only the cold run's
    // post-window events.
    EXPECT_LE(recFork.emitted() - forkPre, recCold.emitted());
    expectTraceSuffixEqual(recCold, recFork, forkPre);
}

// ----------------------------------------------------------------
// Campaign-level strategy equivalence
// ----------------------------------------------------------------

TEST(CampaignStrategies, ByteIdenticalJsonAcrossStrategiesAndThreads)
{
    // 13 scenarios cover all 11 sinus fault kinds plus two VT
    // scenarios; shortened horizons keep the test affordable while
    // still firing a good fraction of the planned faults.
    fault::CampaignConfig base;
    base.scenarios = 13;
    base.seedBase = 7;
    base.sinusSeconds = 0.8;
    base.vtSeconds = 2.0;
    base.threads = 3;

    fault::CampaignConfig cold = base;
    cold.strategy = fault::LoadStrategy::Cold;
    fault::CampaignReport rCold = fault::runCampaign(cold);

    fault::CampaignConfig shared = base;
    shared.strategy = fault::LoadStrategy::Shared;
    fault::CampaignReport rShared = fault::runCampaign(shared);

    fault::CampaignConfig fork = base;
    fork.strategy = fault::LoadStrategy::Fork;
    fault::CampaignReport rFork = fault::runCampaign(fork);

    fault::CampaignConfig fork1 = fork;
    fork1.threads = 1;
    fault::CampaignReport rFork1 = fault::runCampaign(fork1);

    ASSERT_EQ(rCold.results.size(), 13u);
    std::string jCold = rCold.toJson();
    EXPECT_EQ(jCold, rShared.toJson());
    EXPECT_EQ(jCold, rFork.toJson());
    EXPECT_EQ(jCold, rFork1.toJson());
    std::string mCold = rCold.metricsJson();
    EXPECT_EQ(mCold, rShared.metricsJson());
    EXPECT_EQ(mCold, rFork.metricsJson());
    EXPECT_EQ(mCold, rFork1.metricsJson());

    EXPECT_EQ(rCold.protectedSilentCorruptions(), 0u);
}

} // namespace
} // namespace zarf
