/**
 * @file
 * Refinement tests (Sec. 5.1): the extracted Zarf assembly and the
 * imperative baseline must produce bit-identical output streams to
 * the executable specification, across synthetic ECG (normal, VT
 * with therapy) and adversarial random inputs.
 */

#include <gtest/gtest.h>

#include "ecg/synth.hh"
#include "icd/spec.hh"
#include "icd/zarf_icd.hh"
#include "isa/validate.hh"
#include "support/random.hh"
#include "verify/refine.hh"

namespace zarf
{
namespace
{

std::vector<SWord>
heartSamples(ecg::Heart &heart, int n)
{
    std::vector<SWord> out;
    out.reserve(size_t(n));
    for (int i = 0; i < n; ++i)
        out.push_back(heart.nextSample());
    return out;
}

const Program &
icdProgram()
{
    static Program p = icd::buildIcdStepProgram();
    return p;
}

TEST(Refine, ExtractedProgramValidates)
{
    EXPECT_TRUE(validateProgram(icdProgram()).ok())
        << validateProgram(icdProgram()).summary();
}

TEST(Refine, ZarfMatchesSpecOnNormalRhythm)
{
    ecg::ScriptedHeart heart({ { 20.0, 75.0 } }, 42);
    auto inputs = heartSamples(heart, 20 * 200);
    verify::RefinementReport r =
        verify::checkSpecVsZarf(icdProgram(), inputs);
    EXPECT_TRUE(r.ok) << r.detail;
    EXPECT_EQ(r.samplesChecked, inputs.size());
}

TEST(Refine, ZarfMatchesSpecThroughTherapy)
{
    // Include a VT episode so the ATP machine's every transition is
    // exercised in lock-step.
    ecg::ScriptedHeart heart({ { 12.0, 75.0 }, { 40.0, 190.0 } }, 5);
    auto inputs = heartSamples(heart, 52 * 200);
    // Make sure the scenario actually triggers therapy.
    icd::IcdSpec probe;
    for (SWord x : inputs)
        probe.step(x);
    ASSERT_GE(probe.therapyCount(), 1u);

    verify::RefinementReport r =
        verify::checkSpecVsZarf(icdProgram(), inputs);
    EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Refine, ZarfMatchesSpecOnAdversarialInputs)
{
    // Extreme values, spikes, and steps stress the clamps.
    Rng rng(77);
    std::vector<SWord> inputs;
    for (int i = 0; i < 1500; ++i) {
        double roll = rng.real();
        if (roll < 0.1)
            inputs.push_back(SWord(rng.range(-4000, 4000)));
        else if (roll < 0.2)
            inputs.push_back(4000);
        else if (roll < 0.3)
            inputs.push_back(-4000);
        else
            inputs.push_back(SWord(rng.range(-50, 50)));
    }
    verify::RefinementReport r =
        verify::checkSpecVsZarf(icdProgram(), inputs);
    EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Refine, BaselineMatchesSpecOnNormalRhythm)
{
    ecg::ScriptedHeart heart({ { 20.0, 75.0 } }, 42);
    auto inputs = heartSamples(heart, 20 * 200);
    verify::RefinementReport r = verify::checkSpecVsBaseline(inputs);
    EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Refine, BaselineMatchesSpecThroughTherapy)
{
    ecg::ScriptedHeart heart({ { 12.0, 75.0 }, { 40.0, 190.0 } }, 5);
    auto inputs = heartSamples(heart, 52 * 200);
    verify::RefinementReport r = verify::checkSpecVsBaseline(inputs);
    EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Refine, BaselineMatchesSpecOnAdversarialInputs)
{
    Rng rng(99);
    std::vector<SWord> inputs;
    for (int i = 0; i < 1500; ++i)
        inputs.push_back(SWord(rng.range(-4000, 4000)));
    verify::RefinementReport r = verify::checkSpecVsBaseline(inputs);
    EXPECT_TRUE(r.ok) << r.detail;
}

class RefineSeeds : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(RefineSeeds, ZarfMatchesSpecOnRandomStreams)
{
    Rng rng(GetParam() * 31337 + 5);
    std::vector<SWord> inputs;
    for (int i = 0; i < 600; ++i)
        inputs.push_back(SWord(rng.range(-300, 300)));
    verify::RefinementReport r =
        verify::checkSpecVsZarf(icdProgram(), inputs);
    EXPECT_TRUE(r.ok) << r.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefineSeeds,
                         ::testing::Range(uint64_t(0), uint64_t(10)));

} // namespace
} // namespace zarf
