/**
 * @file
 * GC-pressure differential tests: the heap fast paths must be
 * invisible to semantics and to the deterministic cycle/statistics
 * ledger. Recursive allocation-heavy programs run with deliberately
 * tiny semispaces so the collector fires mid-run — dozens of
 * collections for the countdown loop at 12k words — and generated
 * fuzz-corpus programs add breadth. We assert:
 *
 *  - results, I/O, and the *mutator* cycle clock are heap-size
 *    independent (GC time is ledgered separately; a bigger heap may
 *    only turn OutOfMemory into completion, never change a value);
 *  - allocation/instruction statistics — everything the collector
 *    does not own — are bit-identical across heap sizes;
 *  - at the same heap size the word-walk and predecode paths agree
 *    bit-exactly on the *entire* statistics block, GC included;
 *  - a snapshot taken mid-run under GC pressure forks into a machine
 *    that finishes with an identical outcome and ledger.
 */

#include <gtest/gtest.h>

#include "common/testprogs.hh"
#include "fuzz/genprog.hh"
#include "fuzz/oracle.hh"
#include "isa/encoding.hh"
#include "machine/machine.hh"
#include "zasm/zasm.hh"

namespace zarf::fuzz
{
namespace
{

constexpr size_t kTinyHeap = 3 * 4096; ///< Non-power-of-two, tiny.
constexpr size_t kSmallerHeap = 1u << 13;
constexpr size_t kBigHeap = 1u << 18;

/** Builds an 800-cell list and sums it: unlike the countdown loop
 *  (huge garbage, tiny live set) the whole list is live across the
 *  build, so every collection actually copies a few thousand words. */
const char *kBuildListText = R"(
con Nil
con Cons head tail

fun main =
  let l = build 800
  let s = sum l
  result s

fun build n =
  case n of
    0 =>
      let e = Nil
      result e
    else
      let n' = sub n 1
      let t = build n'
      let c = Cons n t
      result c

fun sum list =
  case list of
    Nil =>
      result 0
    Cons head tail =>
      let r = sum tail
      let s = add head r
      result s
  else
    result 0
)";

/** The allocation-heavy program set: name + assembly text. */
std::vector<std::pair<std::string, std::string>>
pressurePrograms()
{
    return {
        { "countdown", testing::countdownProgramText() },
        { "buildlist", kBuildListText },
        { "church", testing::churchProgramText() },
        { "map", testing::mapProgramText() },
    };
}

struct RunOut
{
    Machine::Outcome out;
    MachineStats stats;
    Cycles cycles = 0;
    std::vector<RecordBus::IoOp> io;
};

RunOut
runAt(const Image &img, size_t heapWords, bool predecode)
{
    RecordBus bus;
    MachineConfig cfg;
    cfg.semispaceWords = heapWords;
    cfg.usePredecode = predecode;
    Machine m(img, bus, cfg);
    RunOut r;
    r.out = m.run(20'000'000);
    r.stats = m.stats();
    r.cycles = m.cycles();
    r.io = bus.ops;
    return r;
}

/** Compare every statistic the collector does not own — the mutator
 *  ledger must not see the heap size at all. */
void
expectNonGcStatsEqual(const MachineStats &a, const MachineStats &b)
{
    EXPECT_EQ(a.let.count, b.let.count);
    EXPECT_EQ(a.let.cycles, b.let.cycles);
    EXPECT_EQ(a.caseInstr.count, b.caseInstr.count);
    EXPECT_EQ(a.caseInstr.cycles, b.caseInstr.cycles);
    EXPECT_EQ(a.result.count, b.result.count);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.branchHeads, b.branchHeads);
    EXPECT_EQ(a.letArgs, b.letArgs);
    EXPECT_EQ(a.allocations, b.allocations);
    EXPECT_EQ(a.allocatedWords, b.allocatedWords);
    EXPECT_EQ(a.forces, b.forces);
    EXPECT_EQ(a.whnfHits, b.whnfHits);
    EXPECT_EQ(a.updates, b.updates);
    EXPECT_EQ(a.errorsCreated, b.errorsCreated);
    EXPECT_EQ(a.loadCycles, b.loadCycles);
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.callsPerFunc, b.callsPerFunc);
}

void
expectSameCompletion(const RunOut &a, const RunOut &b)
{
    ASSERT_EQ(a.out.status, b.out.status);
    if (a.out.status == MachineStatus::Done) {
        ASSERT_TRUE(a.out.value && b.out.value);
        EXPECT_TRUE(Value::equal(*a.out.value, *b.out.value));
    }
    EXPECT_EQ(a.io, b.io);
}

class GcPressureProg
    : public ::testing::TestWithParam<size_t>
{
  protected:
    Image
    image() const
    {
        auto [name, text] = pressurePrograms()[GetParam()];
        return encodeProgram(assembleOrDie(text));
    }
};

TEST_P(GcPressureProg, HeapSizeInvisibleToMutator)
{
    Image img = image();
    RunOut tiny = runAt(img, kTinyHeap, true);
    RunOut smaller = runAt(img, kSmallerHeap, true);
    RunOut big = runAt(img, kBigHeap, true);

    // These programs all fit: anything but Done means the heap
    // profile regressed.
    ASSERT_EQ(tiny.out.status, MachineStatus::Done)
        << tiny.out.diagnostic;
    expectSameCompletion(tiny, big);
    expectSameCompletion(smaller, big);
    // The machine clock is the *mutator* clock; collections are
    // ledgered in stats().gcCycles and must not skew it.
    EXPECT_EQ(tiny.cycles, big.cycles);
    EXPECT_EQ(smaller.cycles, big.cycles);
    expectNonGcStatsEqual(tiny.stats, big.stats);
    expectNonGcStatsEqual(smaller.stats, big.stats);
}

TEST_P(GcPressureProg, RefAndUopBitIdenticalUnderPressure)
{
    Image img = image();
    RunOut uop = runAt(img, kTinyHeap, true);
    RunOut ref = runAt(img, kTinyHeap, false);

    expectSameCompletion(uop, ref);
    EXPECT_EQ(uop.out.diagnostic, ref.out.diagnostic);
    EXPECT_EQ(uop.cycles, ref.cycles);
    // Full ledger, GC included: both paths share one heap design.
    EXPECT_EQ(diffStats(uop.stats, ref.stats), std::string());
}

INSTANTIATE_TEST_SUITE_P(Programs, GcPressureProg,
                         ::testing::Range(size_t(0), size_t(4)));

TEST(GcPressureSuite, TinyHeapActuallyCollects)
{
    // The suite above is vacuous if nothing ever GCs; prove the
    // pressure set exercises the collector, including collections
    // that copy a substantial live set.
    uint64_t totalRuns = 0, maxLive = 0;
    for (const auto &[name, text] : pressurePrograms()) {
        RunOut r = runAt(encodeProgram(assembleOrDie(text)),
                         kTinyHeap, true);
        totalRuns += r.stats.gcRuns;
        maxLive = std::max(maxLive, r.stats.gcMaxLiveWords);
    }
    EXPECT_GT(totalRuns, 10u);
    EXPECT_GT(maxLive, 1000u)
        << "no collection copied a nontrivial live set";
}

/** Generated fuzz programs add breadth: tiny terminating programs
 *  whose results and mutator stats must also be heap-blind. */
class GcPressureGen : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(GcPressureGen, HeapSizeInvisibleToSemantics)
{
    GenConfig g;
    g.numFuncs = 7;
    g.maxDepth = 5;
    ProgramGenerator gen(GetParam() * 127 + 3, g);
    BuildResult b = gen.generate().tryBuild();
    ASSERT_TRUE(b.ok);
    Image img = encodeProgram(b.program);

    RunOut tiny = runAt(img, kSmallerHeap, true);
    RunOut big = runAt(img, kBigHeap, true);
    if (tiny.out.status == MachineStatus::OutOfMemory)
        return; // a bigger heap may legitimately get further
    expectSameCompletion(tiny, big);
    EXPECT_EQ(tiny.cycles, big.cycles);
    expectNonGcStatsEqual(tiny.stats, big.stats);

    RunOut ref = runAt(img, kSmallerHeap, false);
    expectSameCompletion(tiny, ref);
    EXPECT_EQ(diffStats(tiny.stats, ref.stats), std::string());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GcPressureGen,
                         ::testing::Range(uint64_t(0), uint64_t(30)));

TEST(GcPressureSuite, SnapshotForkUnderGcPressure)
{
    // Fork the live-list builder mid-run on the tiny heap: the
    // snapshot lands between collections and the forked machine must
    // replay the remaining run bit-exactly — values, I/O, cycles,
    // and the GC ledger.
    Image img = encodeProgram(assembleOrDie(kBuildListText));
    RunOut straight = runAt(img, kTinyHeap, true);
    ASSERT_EQ(straight.out.status, MachineStatus::Done);
    ASSERT_GT(straight.stats.gcRuns, 0u);

    RecordBus bus;
    MachineConfig cfg;
    cfg.semispaceWords = kTinyHeap;
    cfg.usePredecode = true;
    Machine src(img, bus, cfg);
    (void)src.advance(straight.cycles / 2);
    auto snap = src.snapshot();

    Machine fork(img, bus, cfg);
    fork.restore(*snap);
    Machine::Outcome out = fork.run(20'000'000);

    ASSERT_EQ(out.status, straight.out.status);
    ASSERT_TRUE(out.value && straight.out.value);
    EXPECT_TRUE(Value::equal(*out.value, *straight.out.value));
    EXPECT_EQ(fork.cycles(), straight.cycles);
    EXPECT_EQ(bus.ops, straight.io);
    EXPECT_EQ(diffStats(fork.stats(), straight.stats),
              std::string());
}

} // namespace
} // namespace zarf::fuzz
