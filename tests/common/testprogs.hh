/**
 * @file
 * Canonical Zarf programs shared across the test suite.
 */

#ifndef ZARF_TESTS_COMMON_TESTPROGS_HH
#define ZARF_TESTS_COMMON_TESTPROGS_HH

#include <string>

namespace zarf::testing
{

/** The paper's Fig. 4 example: linked lists and map. */
inline std::string
mapProgramText()
{
    return R"(
con Nil
con Cons head tail

fun main =
  let inc = addOne
  let l0 = Nil
  let l1 = Cons 3 l0
  let l2 = Cons 2 l1
  let l3 = Cons 1 l2
  let out = map inc l3
  let s = sumList out
  result s

fun addOne x =
  let y = add x 1
  result y

fun map f list =
  case list of
    Nil =>
      let e = Nil
      result e
    Cons head tail =>
      let head' = f head
      let tail' = map f tail
      let list' = Cons head' tail'
      result list'
  else
    let err = Error 0
    result err

fun sumList list =
  case list of
    Nil =>
      result 0
    Cons head tail =>
      let rest = sumList tail
      let s = add head rest
      result s
  else
    let err = Error 0
    result err
)";
}

/** Church numerals: compute 2^8 by iterated application. */
inline std::string
churchProgramText()
{
    return R"(
fun main =
  let two = church2
  let eight = pow two 3
  let inc = succ
  let n = eight inc 0
  result n

# church2 f x = f (f x)
fun church2 f x =
  let fx = f x
  let ffx = f fx
  result ffx

# pow b n = b composed with itself... here: b^(2^n) by squaring
fun pow b n =
  case n of
    0 =>
      result b
    else
      let n' = sub n 1
      let b2 = compose b b
      let r = pow b2 n'
      result r

fun compose f g x =
  let gx = g x
  let fgx = f gx
  result fgx

fun succ x =
  let y = add x 1
  result y
)";
}

/** A countdown loop for long-run/tail-call behaviour. */
inline std::string
countdownProgramText()
{
    return R"(
fun main =
  let n = loop 100000
  result n

fun loop n =
  case n of
    0 =>
      result 42
    else
      let n' = sub n 1
      let r = loop n'
      result r
)";
}

/** Echo words between ports: getint 0, add 10, putint 1, loop k. */
inline std::string
ioEchoProgramText()
{
    return R"(
fun main =
  let r = pump 5
  result r

fun pump k =
  case k of
    0 =>
      result 0
    else
      let v = getint 0
      let v' = add v 10
      let w = putint 1 v'
      # force the write before recursing by casing on it
      case w of
        else
          let k' = sub k 1
          let r = pump k'
          result r
)";
}

} // namespace zarf::testing

#endif // ZARF_TESTS_COMMON_TESTPROGS_HH
