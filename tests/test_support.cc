/**
 * @file
 * Support-library tests: text helpers and deterministic PRNG.
 */

#include <gtest/gtest.h>

#include "support/logging.hh"
#include "support/random.hh"
#include "support/text.hh"

namespace zarf
{
namespace
{

TEST(Text, Split)
{
    auto v = split("a,b,,c", ',');
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[2], "");
    EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(Text, Trim)
{
    EXPECT_EQ(trim("  x  "), "x");
    EXPECT_EQ(trim("x"), "x");
    EXPECT_EQ(trim("   "), "");
}

TEST(Text, IsInteger)
{
    EXPECT_TRUE(isInteger("42"));
    EXPECT_TRUE(isInteger("-42"));
    EXPECT_FALSE(isInteger(""));
    EXPECT_FALSE(isInteger("-"));
    EXPECT_FALSE(isInteger("4x"));
}

TEST(Text, Pad)
{
    EXPECT_EQ(padLeft("ab", 4), "  ab");
    EXPECT_EQ(padRight("ab", 4), "ab  ");
    EXPECT_EQ(padLeft("abcde", 4), "abcde");
}

TEST(Logging, Strprintf)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 3, "q"), "x=3 y=q");
    EXPECT_EQ(strprintf("%05u", 42u), "00042");
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = r.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        double d = r.real();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, GaussianRoughMoments)
{
    Rng r(13);
    double sum = 0, sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = r.gaussian(2.0);
        sum += g;
        sq += g * g;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

} // namespace
} // namespace zarf
