/**
 * @file
 * Differential testing of the direct-threaded dispatch tier and the
 * fast-functional mode (machine/threaded.hh) against the µop tier.
 *
 * The threaded tier is cycle-accurate: it must be bit-identical to
 * the µop tier in results, total cycle counts, and every statistic —
 * on random programs, under GC pressure, under fault injection, and
 * on the full ICD kernel — and its snapshots must be interchangeable
 * with µop snapshots. The fast-functional tier abandons the cycle
 * model, so it is held to outcome equality only: status, diagnostic,
 * value, and the I/O log. Both tiers carry two dispatch cores
 * (computed goto and a portable table); every differential here runs
 * under both cores via testhooks::forceTableDispatch.
 */

#include <gtest/gtest.h>

#include "ecg/synth.hh"
#include "fault/campaign.hh"
#include "fuzz/genprog.hh"
#include "icd/zarf_icd.hh"
#include "isa/binary.hh"
#include "isa/encoding.hh"
#include "machine/machine.hh"
#include "machine/testhooks.hh"
#include "machine/threaded.hh"
#include "system/ports.hh"

namespace zarf
{
namespace
{

/** Require every statistic to be identical between two tiers. */
void
expectStatsEqual(const MachineStats &a, const MachineStats &b)
{
    EXPECT_EQ(a.let.count, b.let.count);
    EXPECT_EQ(a.let.cycles, b.let.cycles);
    EXPECT_EQ(a.caseInstr.count, b.caseInstr.count);
    EXPECT_EQ(a.caseInstr.cycles, b.caseInstr.cycles);
    EXPECT_EQ(a.result.count, b.result.count);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.branchHeads, b.branchHeads);
    EXPECT_EQ(a.letArgs, b.letArgs);
    EXPECT_EQ(a.allocations, b.allocations);
    EXPECT_EQ(a.allocatedWords, b.allocatedWords);
    EXPECT_EQ(a.forces, b.forces);
    EXPECT_EQ(a.whnfHits, b.whnfHits);
    EXPECT_EQ(a.updates, b.updates);
    EXPECT_EQ(a.errorsCreated, b.errorsCreated);
    EXPECT_EQ(a.loadCycles, b.loadCycles);
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.callsPerFunc, b.callsPerFunc);
    EXPECT_EQ(a.gcRuns, b.gcRuns);
    EXPECT_EQ(a.gcCycles, b.gcCycles);
    EXPECT_EQ(a.gcObjectsCopied, b.gcObjectsCopied);
    EXPECT_EQ(a.gcWordsCopied, b.gcWordsCopied);
    EXPECT_EQ(a.gcRefChecks, b.gcRefChecks);
    EXPECT_EQ(a.gcMaxLiveWords, b.gcMaxLiveWords);
    EXPECT_EQ(a.gcMaxPauseCycles, b.gcMaxPauseCycles);
}

MachineConfig
tierConfig(DispatchTier tier, size_t semispaceWords = 1u << 20)
{
    MachineConfig cfg;
    cfg.tier = tier;
    cfg.semispaceWords = semispaceWords;
    return cfg;
}

/** Run both dispatch cores of the tier under test. On builds
 *  without computed goto both passes use the table core; that is
 *  redundant but still correct, and keeps the parameter space
 *  identical across platforms. */
class TableForcer
{
  public:
    explicit TableForcer(bool forceTable)
    {
        testhooks::forceTableDispatch = forceTable;
    }
    ~TableForcer() { testhooks::forceTableDispatch = false; }
};

Image
randomImage(uint64_t seed)
{
    fuzz::GenConfig gcfg;
    gcfg.numCons = 4;
    gcfg.numFuncs = 7;
    gcfg.maxDepth = 5;
    fuzz::ProgramGenerator gen(seed * 2654435761u + 7, gcfg);
    BuildResult b = gen.generate().tryBuild();
    EXPECT_TRUE(b.ok) << b.error;
    return encodeProgram(b.program);
}

/** Deterministic logging bus, so I/O-bearing generated programs
 *  contribute comparable read values and write logs. */
class LogBus : public IoBus
{
  public:
    SWord
    getInt(SWord port) override
    {
        SWord v = SWord(((uint64_t(port) * 0x9e3779b97f4a7c15ull +
                          ordinal++ * 0xbf58476d1ce4e5b9ull) >>
                         17) &
                        0xffff) -
                  0x8000;
        ops.push_back({ true, port, v });
        return v;
    }

    void
    putInt(SWord port, SWord value) override
    {
        ops.push_back({ false, port, value });
    }

    struct Op
    {
        bool isGet;
        SWord port;
        SWord value;
        bool
        operator==(const Op &o) const
        {
            return isGet == o.isGet && port == o.port &&
                   value == o.value;
        }
    };
    std::vector<Op> ops;

  private:
    uint64_t ordinal = 0;
};

void
runThreadedDifferential(uint64_t seed, size_t semispaceWords,
                        bool forceTable)
{
    Image img = randomImage(seed);

    LogBus busA;
    Machine uop(img, busA, tierConfig(DispatchTier::Uop,
                                      semispaceWords));
    Machine::Outcome oa = uop.run();

    TableForcer forcer(forceTable);
    LogBus busB;
    Machine thr(img, busB, tierConfig(DispatchTier::Threaded,
                                      semispaceWords));
    Machine::Outcome ob = thr.run();

    ASSERT_EQ(oa.status, ob.status)
        << "uop: " << oa.diagnostic
        << "\nthreaded: " << ob.diagnostic;
    EXPECT_EQ(oa.diagnostic, ob.diagnostic);
    EXPECT_EQ(uop.cycles(), thr.cycles());
    if (oa.status == MachineStatus::Done) {
        ASSERT_TRUE(oa.value && ob.value);
        EXPECT_TRUE(Value::equal(*oa.value, *ob.value))
            << "uop:      " << oa.value->toString() << "\n"
            << "threaded: " << ob.value->toString();
    }
    expectStatsEqual(uop.stats(), thr.stats());
    EXPECT_EQ(busA.ops, busB.ops);
}

void
runFastDifferential(uint64_t seed, size_t semispaceWords,
                    bool forceTable)
{
    Image img = randomImage(seed);

    LogBus busA;
    Machine uop(img, busA, tierConfig(DispatchTier::Uop,
                                      semispaceWords));
    Machine::Outcome oa = uop.run();

    TableForcer forcer(forceTable);
    LogBus busB;
    Machine fast(img, busB, tierConfig(DispatchTier::FastFunctional,
                                       semispaceWords));
    Machine::Outcome ob = fast.run();

    // Outcome equality applies when both runs terminated; resource
    // bounds fire at different points on a tier with no cycle clock
    // (fuzz/oracle.hh's equivalence map).
    auto terminal = [](MachineStatus st) {
        return st == MachineStatus::Done || st == MachineStatus::Stuck;
    };
    if (!terminal(oa.status) || !terminal(ob.status))
        return;
    ASSERT_EQ(oa.status, ob.status)
        << "uop: " << oa.diagnostic << "\nfast: " << ob.diagnostic;
    EXPECT_EQ(oa.diagnostic, ob.diagnostic);
    if (oa.status == MachineStatus::Done) {
        ASSERT_TRUE(oa.value && ob.value);
        EXPECT_TRUE(Value::equal(*oa.value, *ob.value))
            << "uop:  " << oa.value->toString() << "\n"
            << "fast: " << ob.value->toString();
    }
    EXPECT_EQ(busA.ops, busB.ops);
}

// seed, forceTable
using TierParam = std::tuple<uint64_t, bool>;

class ThreadedDifferential
    : public ::testing::TestWithParam<TierParam>
{};

TEST_P(ThreadedDifferential, BitIdenticalOnRandomPrograms)
{
    auto [seed, forceTable] = GetParam();
    runThreadedDifferential(seed, 1u << 20, forceTable);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ThreadedDifferential,
    ::testing::Combine(::testing::Range(uint64_t(0), uint64_t(120)),
                       ::testing::Bool()));

class ThreadedGcDifferential
    : public ::testing::TestWithParam<TierParam>
{};

TEST_P(ThreadedGcDifferential, BitIdenticalUnderGcPressure)
{
    // A heap barely above the safe-point margin forces frequent
    // collections; the threaded tier's register-cached state must
    // spill and reload around every GC so roots, copy order, and
    // pause accounting match the µop tier exactly.
    auto [seed, forceTable] = GetParam();
    runThreadedDifferential(seed, 3 * 4096, forceTable);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ThreadedGcDifferential,
    ::testing::Combine(::testing::Range(uint64_t(0), uint64_t(60)),
                       ::testing::Bool()));

class FastDifferential : public ::testing::TestWithParam<TierParam>
{};

TEST_P(FastDifferential, OutcomeEqualOnRandomPrograms)
{
    auto [seed, forceTable] = GetParam();
    runFastDifferential(seed, 1u << 20, forceTable);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FastDifferential,
    ::testing::Combine(::testing::Range(uint64_t(0), uint64_t(120)),
                       ::testing::Bool()));

class FastGcDifferential : public ::testing::TestWithParam<TierParam>
{};

TEST_P(FastGcDifferential, OutcomeEqualUnderGcPressure)
{
    auto [seed, forceTable] = GetParam();
    runFastDifferential(seed, 3 * 4096, forceTable);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FastGcDifferential,
    ::testing::Combine(::testing::Range(uint64_t(0), uint64_t(60)),
                       ::testing::Bool()));

// ----------------------------------------------------------------
// Fault injection: the tiers must agree bit-for-bit on what a
// physical upset does, including the detection diagnostics.
// ----------------------------------------------------------------

TEST(ThreadedFault, HeapBitFlipBitIdentical)
{
    for (uint64_t seed : { 3u, 11u, 27u, 44u }) {
        Image img = randomImage(seed);
        NullBus busA, busB;
        Machine uop(img, busA, tierConfig(DispatchTier::Uop));
        Machine thr(img, busB, tierConfig(DispatchTier::Threaded));

        // Identical schedule on both machines: run a prefix, flip
        // the same heap bit, then run out.
        for (Machine *m : { &uop, &thr }) {
            m->advance(2000);
            m->injectHeapBitFlip(size_t(seed * 13 + 5),
                                 unsigned(seed % 31));
            m->run();
        }
        EXPECT_EQ(uop.status(), thr.status());
        EXPECT_EQ(uop.diagnostic(), thr.diagnostic());
        EXPECT_EQ(uop.cycles(), thr.cycles());
        expectStatsEqual(uop.stats(), thr.stats());
    }
}

TEST(ThreadedFault, OperandBitFlipBitIdentical)
{
    for (uint64_t seed : { 7u, 19u, 52u }) {
        Image img = randomImage(seed);
        NullBus busA, busB;
        Machine uop(img, busA, tierConfig(DispatchTier::Uop));
        Machine thr(img, busB, tierConfig(DispatchTier::Threaded));
        for (Machine *m : { &uop, &thr }) {
            m->advance(1500);
            m->injectOperandBitFlip(unsigned(seed % 32));
            m->run();
        }
        EXPECT_EQ(uop.status(), thr.status());
        EXPECT_EQ(uop.diagnostic(), thr.diagnostic());
        EXPECT_EQ(uop.cycles(), thr.cycles());
        expectStatsEqual(uop.stats(), thr.stats());
    }
}

// ----------------------------------------------------------------
// Snapshot/restore: µop and threaded snapshots are interchangeable;
// the fast tier round-trips within its own family.
// ----------------------------------------------------------------

TEST(ThreadedSnapshot, CrossTierRestoreBitIdentical)
{
    Image img = randomImage(23);
    NullBus busA;
    Machine uop(img, busA, tierConfig(DispatchTier::Uop));
    Machine::Outcome straight = uop.run();

    // µop snapshot mid-run -> threaded machine finishes it, and the
    // other direction, both landing exactly where the straight µop
    // run landed.
    for (DispatchTier src : { DispatchTier::Uop,
                              DispatchTier::Threaded }) {
        DispatchTier dst = src == DispatchTier::Uop
                               ? DispatchTier::Threaded
                               : DispatchTier::Uop;
        NullBus busS, busD;
        Machine source(img, busS, tierConfig(src));
        source.advance(uop.cycles() / 2);
        auto snap = source.snapshot();
        Machine fork(img, busD, tierConfig(dst));
        fork.restore(*snap);
        Machine::Outcome out = fork.run();
        EXPECT_EQ(out.status, straight.status);
        EXPECT_EQ(fork.cycles(), uop.cycles());
        if (straight.status == MachineStatus::Done) {
            ASSERT_TRUE(out.value && straight.value);
            EXPECT_TRUE(Value::equal(*out.value, *straight.value));
        }
        expectStatsEqual(fork.stats(), uop.stats());
    }
}

TEST(ThreadedSnapshot, FastRoundTripsWithinItsFamily)
{
    Image img = randomImage(31);
    NullBus busA, busB;
    Machine straight(img, busA,
                     tierConfig(DispatchTier::FastFunctional));
    Machine::Outcome whole = straight.run();

    Machine rt(img, busB, tierConfig(DispatchTier::FastFunctional));
    rt.advance(straight.cycles() / 2);
    auto snap = rt.snapshot();
    Machine fork(img, busB, tierConfig(DispatchTier::FastFunctional));
    fork.restore(*snap);
    Machine::Outcome out = fork.run();
    EXPECT_EQ(out.status, whole.status);
    EXPECT_EQ(fork.cycles(), straight.cycles());
    if (whole.status == MachineStatus::Done) {
        ASSERT_TRUE(out.value && whole.value);
        EXPECT_TRUE(Value::equal(*out.value, *whole.value));
    }
}

TEST(ThreadedSnapshotDeathTest, CrossFamilyRestoreIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    Image img = randomImage(5);
    NullBus busA, busB;
    Machine fast(img, busA, tierConfig(DispatchTier::FastFunctional));
    fast.advance(1000);
    auto snap = fast.snapshot();
    Machine thr(img, busB, tierConfig(DispatchTier::Threaded));
    EXPECT_DEATH(thr.restore(*snap), "dispatch tier mismatch");
}

// ----------------------------------------------------------------
// ICD kernel workload
// ----------------------------------------------------------------

/** Back-to-back rig as in the Sec. 6 trace: the timer always
 *  fires, ECG samples come from a scripted heart. */
class BusyRig : public IoBus
{
  public:
    explicit BusyRig(ecg::Heart &h) : heart(h) {}

    SWord
    getInt(SWord port) override
    {
        if (port == sys::kPortTimer)
            return 1;
        if (port == sys::kPortEcgIn)
            return heart.nextSample();
        return 0;
    }

    void
    putInt(SWord port, SWord v) override
    {
        writes.push_back({ port, v });
    }

    ecg::Heart &heart;
    std::vector<std::pair<SWord, SWord>> writes;
};

TEST(ThreadedIcd, KernelTraceBitIdentical)
{
    // Include a VT episode so therapy paths execute in both runs.
    ecg::ScriptedHeart heartA({ { 20.0, 75.0 }, { 40.0, 190.0 } },
                              42);
    ecg::ScriptedHeart heartB({ { 20.0, 75.0 }, { 40.0, 190.0 } },
                              42);
    BusyRig rigA(heartA), rigB(heartB);
    Image img = icd::buildKernelImage();
    Machine uop(img, rigA, tierConfig(DispatchTier::Uop));
    Machine thr(img, rigB, tierConfig(DispatchTier::Threaded));

    while (uop.cycles() < 3'000'000 &&
           uop.advance(500'000) == MachineStatus::Running) {}
    while (thr.cycles() < 3'000'000 &&
           thr.advance(500'000) == MachineStatus::Running) {}

    EXPECT_EQ(uop.cycles(), thr.cycles());
    EXPECT_EQ(rigA.writes, rigB.writes);
    expectStatsEqual(uop.stats(), thr.stats());
}

TEST(ThreadedIcd, KernelOutputFastMatches)
{
    // The fast tier has no cycle clock, so drive both runs by I/O
    // progress instead: the kernel's pacing decisions for the same
    // sample stream must be identical.
    ecg::ScriptedHeart heartA({ { 20.0, 75.0 }, { 40.0, 190.0 } },
                              42);
    ecg::ScriptedHeart heartB({ { 20.0, 75.0 }, { 40.0, 190.0 } },
                              42);
    BusyRig rigA(heartA), rigB(heartB);
    Image img = icd::buildKernelImage();
    Machine uop(img, rigA, tierConfig(DispatchTier::Uop));
    Machine fast(img, rigB, tierConfig(DispatchTier::FastFunctional));

    while (uop.cycles() < 3'000'000 &&
           uop.advance(500'000) == MachineStatus::Running) {}
    while (rigB.writes.size() < rigA.writes.size() &&
           fast.advance(500'000) == MachineStatus::Running) {}

    ASSERT_GE(rigB.writes.size(), rigA.writes.size());
    rigB.writes.resize(rigA.writes.size());
    EXPECT_EQ(rigA.writes, rigB.writes);
}

// ----------------------------------------------------------------
// Campaign tier invariance: verdicts (and the JSON they render to)
// must not depend on the dispatch tier.
// ----------------------------------------------------------------

TEST(ThreadedCampaign, VerdictsTierInvariant)
{
    fault::CampaignConfig base;
    base.scenarios = 44; // one full pass over the scenario space
    base.threads = 2;
    base.sinusSeconds = 0.35;
    base.vtSeconds = 0.35;

    fault::CampaignConfig threaded = base;
    threaded.lambdaTier = DispatchTier::Threaded;

    fault::CampaignReport a = fault::runCampaign(base);
    fault::CampaignReport b = fault::runCampaign(threaded);
    EXPECT_EQ(a.toJson(), b.toJson());
}

// ----------------------------------------------------------------
// Dispatch capability report
// ----------------------------------------------------------------

TEST(ThreadedDispatch, CapabilityMatchesBuildDefine)
{
#ifdef ZARF_HAVE_COMPUTED_GOTO
    EXPECT_TRUE(threadedDispatchUsesComputedGoto());
#else
    EXPECT_FALSE(threadedDispatchUsesComputedGoto());
#endif
}

} // namespace
} // namespace zarf
