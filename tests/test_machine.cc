/**
 * @file
 * Cycle-level machine tests: functional correctness against the
 * reference engines, laziness, update-in-place, GC behaviour, cycle
 * accounting sanity, and resumable execution.
 */

#include <gtest/gtest.h>

#include "common/testprogs.hh"
#include "machine/machine.hh"
#include "sem/bigstep.hh"
#include "zasm/zasm.hh"

namespace zarf
{
namespace
{

Machine::Outcome
runText(const std::string &text, IoBus &bus, MachineConfig cfg = {})
{
    Program p = assembleOrDie(text);
    Machine m(encodeProgram(p), bus, cfg);
    return m.run();
}

SWord
intMain(const std::string &text)
{
    NullBus bus;
    Machine::Outcome o = runText(text, bus);
    EXPECT_EQ(o.status, MachineStatus::Done) << o.diagnostic;
    EXPECT_TRUE(o.value && o.value->isInt());
    return o.value ? o.value->intVal() : 0;
}

TEST(Machine, BasicPrograms)
{
    EXPECT_EQ(intMain("fun main = result 7"), 7);
    EXPECT_EQ(intMain("fun main = let x = add 2 3\n result x"), 5);
    EXPECT_EQ(intMain(testing::mapProgramText()), 9);
    EXPECT_EQ(intMain(testing::churchProgramText()), 256);
    EXPECT_EQ(intMain(testing::countdownProgramText()), 42);
}

TEST(Machine, IoEcho)
{
    ScriptBus bus;
    bus.feed(0, { 5, 7, 9, 11, 13 });
    Machine::Outcome o = runText(testing::ioEchoProgramText(), bus);
    EXPECT_EQ(o.status, MachineStatus::Done);
    EXPECT_EQ(bus.written(1),
              (std::vector<SWord>{ 15, 17, 19, 21, 23 }));
}

TEST(Machine, LazySkipsUnusedBindings)
{
    ScriptBus bus;
    Machine::Outcome o = runText(R"(
fun main =
  let unused = putint 1 99
  result 3
)",
                                 bus);
    EXPECT_EQ(o.status, MachineStatus::Done);
    EXPECT_EQ(o.value->intVal(), 3);
    EXPECT_TRUE(bus.written(1).empty());
}

TEST(Machine, ThunksForcedOnce)
{
    ScriptBus bus;
    Machine::Outcome o = runText(R"(
fun main =
  let shared = putint 2 11
  let a = add shared shared
  let b = add a shared
  result b
)",
                                 bus);
    EXPECT_EQ(o.status, MachineStatus::Done);
    EXPECT_EQ(o.value->intVal(), 33);
    EXPECT_EQ(bus.written(2).size(), 1u);
}

TEST(Machine, ErrorValues)
{
    NullBus bus;
    Machine::Outcome o =
        runText("fun main = let x = div 1 0\n result x", bus);
    ASSERT_EQ(o.status, MachineStatus::Done);
    ASSERT_TRUE(o.value->isError());
    EXPECT_EQ(o.value->items()[0]->intVal(), kErrDivZero);
}

TEST(Machine, PartialApplicationValue)
{
    NullBus bus;
    Machine::Outcome o = runText(R"(
fun main =
  let f = adder 1
  result f
fun adder a b =
  let s = add a b
  result s
)",
                                 bus);
    ASSERT_EQ(o.status, MachineStatus::Done);
    ASSERT_TRUE(o.value->isClosure());
    EXPECT_EQ(o.value->items().size(), 1u);
}

TEST(Machine, CyclesAccumulate)
{
    Program p = assembleOrDie(testing::mapProgramText());
    NullBus bus;
    Machine m(encodeProgram(p), bus);
    Cycles afterLoad = m.cycles();
    EXPECT_GT(afterLoad, 0u); // load states charged
    ASSERT_EQ(m.run().status, MachineStatus::Done);
    EXPECT_GT(m.cycles(), afterLoad);
    const MachineStats &s = m.stats();
    EXPECT_GT(s.let.count, 0u);
    EXPECT_GT(s.caseInstr.count, 0u);
    EXPECT_GT(s.result.count, 0u);
    EXPECT_GT(s.branchHeads, 0u);
    // Per-class cycles must account for all execution cycles in a
    // program dominated by instruction processing.
    EXPECT_LE(s.let.cycles + s.caseInstr.cycles + s.result.cycles,
              s.execCycles);
}

TEST(Machine, AdvanceIsResumable)
{
    Program p = assembleOrDie(testing::countdownProgramText());
    NullBus bus;
    Machine m(encodeProgram(p), bus);
    int slices = 0;
    while (m.advance(10'000) == MachineStatus::Running)
        ++slices;
    EXPECT_GT(slices, 2); // the loop cannot finish in one slice
    EXPECT_EQ(m.advance(1), MachineStatus::Done);
}

TEST(Machine, GcCollectsDeadIterations)
{
    // A long tail-recursive loop allocates per iteration; with a
    // small heap it only survives because collection reclaims dead
    // iterations (and the update-frame collapse makes them dead).
    Program p = assembleOrDie(testing::countdownProgramText());
    NullBus bus;
    MachineConfig cfg;
    cfg.semispaceWords = 1 << 14;
    Machine m(encodeProgram(p), bus, cfg);
    Machine::Outcome o = m.run(500'000'000ull);
    ASSERT_EQ(o.status, MachineStatus::Done) << o.diagnostic;
    EXPECT_EQ(o.value->intVal(), 42);
    EXPECT_GT(m.stats().gcRuns, 0u);
    EXPECT_GT(m.stats().gcCycles, 0u);
}

TEST(Machine, GcPreservesLiveData)
{
    // Build a list, force a collection via the gc hardware function
    // mid-computation, then consume the list.
    ScriptBus bus;
    Machine::Outcome o = runText(R"(
con Nil
con Cons head tail

fun main =
  let l0 = Nil
  let l1 = Cons 30 l0
  let l2 = Cons 12 l1
  let t = gc 0
  case t of
    else
      let s = sumList l2
      result s

fun sumList list =
  case list of
    Nil =>
      result 0
    Cons head tail =>
      let rest = sumList tail
      let s = add head rest
      result s
  else
    result -1
)",
                                 bus);
    ASSERT_EQ(o.status, MachineStatus::Done) << o.diagnostic;
    EXPECT_EQ(o.value->intVal(), 42);
}

TEST(Machine, InvokeGcRunsCollector)
{
    Program p = assembleOrDie(R"(
fun main =
  let t = gc 0
  result t
)");
    NullBus bus;
    Machine m(encodeProgram(p), bus);
    ASSERT_EQ(m.run().status, MachineStatus::Done);
    EXPECT_GE(m.stats().gcRuns, 1u);
}

TEST(Machine, GcCostModelMatchesPaper)
{
    // Sec. 5.2: copying an N-word object costs N+4 cycles; checking
    // a reference costs 2. Verify the accounting identity.
    Program p = assembleOrDie(testing::countdownProgramText());
    NullBus bus;
    MachineConfig cfg;
    cfg.semispaceWords = 1 << 14;
    Machine m(encodeProgram(p), bus, cfg);
    ASSERT_EQ(m.run(500'000'000ull).status, MachineStatus::Done);
    const MachineStats &s = m.stats();
    TimingModel t;
    Cycles expect = s.gcRuns * t.gcSetup +
                    s.gcObjectsCopied * t.gcPerObjectFixed +
                    s.gcWordsCopied * t.gcPerWordCopied +
                    s.gcRefChecks * t.gcRefCheck;
    EXPECT_EQ(s.gcCycles, expect);
}

TEST(Machine, OutOfMemoryReported)
{
    // Build an ever-growing live list; a small heap must fail with
    // OutOfMemory, not crash or loop.
    Program p = assembleOrDie(R"(
con Cons head tail
con Nil
fun main =
  let n = Nil
  let r = grow n 0
  result r
fun grow acc k =
  let done = eq k 1000000
  case done of
    1 =>
      result acc
    else
      let acc' = Cons k acc
      let k' = add k 1
      let r = grow acc' k'
      result r
)");
    NullBus bus;
    MachineConfig cfg;
    cfg.semispaceWords = 1 << 13;
    Machine m(encodeProgram(p), bus, cfg);
    EXPECT_EQ(m.run(500'000'000ull).status,
              MachineStatus::OutOfMemory);
}

TEST(Machine, AgreesWithBigStepOnSharedPrograms)
{
    for (const std::string &text : { testing::mapProgramText(),
                                     testing::churchProgramText() }) {
        Program p = assembleOrDie(text);
        NullBus b1, b2;
        BigStep bs(p, b1);
        EvalResult er = bs.runMain();
        ASSERT_TRUE(er.ok());
        Machine m(encodeProgram(p), b2);
        Machine::Outcome o = m.run();
        ASSERT_EQ(o.status, MachineStatus::Done) << o.diagnostic;
        EXPECT_TRUE(Value::equal(*er.value, *o.value));
    }
}

TEST(Machine, PrimApplyWorstCaseWithinPaperBound)
{
    // "Applying two arguments to a primitive ALU function and
    // evaluating it has a maximum runtime of 30 cycles."
    TimingModel t;
    EXPECT_LE(primApplyWorstCase(t), 30u);
    // And it is a real bound for the machine: measure the cycles of
    // exactly that sequence (minus the surrounding result plumbing).
    Program p = assembleOrDie(R"(
fun main =
  let x = add 20 22
  case x of
    else
      result x
)");
    NullBus bus;
    Machine m(encodeProgram(p), bus);
    Cycles before = m.cycles();
    ASSERT_EQ(m.run().status, MachineStatus::Done);
    // Total includes main's activation and result; the let+force
    // portion must sit within the documented worst case.
    const MachineStats &s = m.stats();
    EXPECT_LE(s.let.cycles + s.caseInstr.cycles,
              primApplyWorstCase(t) + 10);
    EXPECT_GT(m.cycles(), before);
}

TEST(Machine, RejectsCorruptImage)
{
    Image img = encodeProgram(assembleOrDie("fun main = result 1"));
    img[0] = 0x12345678;
    NullBus bus;
    Machine m(img, bus);
    EXPECT_EQ(m.run().status, MachineStatus::Stuck);
}

} // namespace
} // namespace zarf
