/**
 * @file
 * The lifted-IR evaluator proved against the differential oracle
 * (docs/TESTING.md, "The fifth evaluator"):
 *
 *  - every checked-in corpus entry replays clean with the IR
 *    comparison on, and the comparison actually applied wherever the
 *    oracle reached agreement;
 *  - a 500-program generated sweep shows zero divergences, and a
 *    direct machine-vs-IR run over the same programs agrees on
 *    outcome, value, I/O log, and the exact λ-cycle count;
 *  - campaign reports are byte-identical across repeated runs and
 *    across worker-thread counts with the IR evaluator in rotation;
 *  - mutation-kill: corrupting an IR transfer rule (ir/testhooks.hh)
 *    makes a bounded campaign — or a single crafted oracle run —
 *    report an `uop-vs-ir` divergence, proof the fifth evaluator has
 *    teeth on both the cycle ledger and the value semantics.
 */

#include <gtest/gtest.h>

#include "common/testprogs.hh"
#include "fuzz/corpus.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/genprog.hh"
#include "ir/eval.hh"
#include "ir/lift.hh"
#include "ir/testhooks.hh"
#include "isa/encoding.hh"
#include "machine/machine.hh"
#include "zasm/zasm.hh"

namespace zarf::fuzz
{
namespace
{

/** Scoped corruption of one IR transfer rule. The flags are
 *  process-global; campaigns join their worker pool before
 *  returning, so scoping around runFuzz/runOracle is safe. */
struct IrDefectGuard
{
    explicit IrDefectGuard(bool &flag) : f(flag) { f = true; }
    ~IrDefectGuard() { f = false; }
    bool &f;
};

TEST(IrCorpus, EveryCorpusEntryAgreesWithIr)
{
    CorpusLoad load = loadCorpusDir(ZARF_FUZZ_CORPUS_DIR);
    for (const auto &err : load.errors)
        ADD_FAILURE() << err;
    ASSERT_FALSE(load.entries.empty())
        << "seed corpus missing at " ZARF_FUZZ_CORPUS_DIR;

    FuzzConfig cfg; // compareIr defaults on
    size_t compared = 0;
    for (const CorpusEntry &e : load.entries) {
        OracleResult o = replayImage(e.image, cfg);
        EXPECT_NE(o.verdict, Verdict::Divergence)
            << e.path << ": " << o.detail;
        if (o.verdict == Verdict::Agree) {
            EXPECT_TRUE(o.irCompared)
                << e.path << ": agreement without the IR evaluator";
            ++compared;
        }
    }
    EXPECT_GT(compared, 0u);
}

TEST(IrSweep, FiveHundredGeneratedProgramsAgree)
{
    size_t built = 0, compared = 0;
    for (uint64_t seed = 0; built < 500; ++seed) {
        ASSERT_LT(seed, 4000u) << "generator starved the sweep";
        ProgramGenerator gen(seed);
        BuildResult b = gen.generate().tryBuild();
        if (!b.ok)
            continue;
        ++built;
        OracleResult o = runOracle(encodeProgram(b.program));
        EXPECT_NE(o.verdict, Verdict::Divergence)
            << "seed " << seed << ": " << o.detail;
        compared += o.irCompared;
    }
    EXPECT_GT(compared, 250u)
        << "IR comparison applied too rarely to prove anything";
}

/** The oracle compares through its own lens; this test holds the
 *  raw artifacts side by side — status class, deep-forced value,
 *  I/O log, and Machine::cycles() — with no oracle in between. */
TEST(IrSweep, DirectMachineVsIrIsBitExact)
{
    size_t checked = 0;
    for (uint64_t seed = 0; checked < 150; ++seed) {
        ASSERT_LT(seed, 2000u);
        ProgramGenerator gen(seed);
        BuildResult b = gen.generate().tryBuild();
        if (!b.ok)
            continue;
        Image img = encodeProgram(b.program);

        RecordBus mBus;
        MachineConfig mc;
        mc.semispaceWords = 1u << 15;
        Machine m(img, mBus, mc);
        Machine::Outcome mo = m.run(1'000'000);
        if (mo.status != MachineStatus::Done &&
            mo.status != MachineStatus::Stuck)
            continue; // budget/OOM runs are outside the contract
        ++checked;

        ir::LiftResult lift = ir::liftImage(img);
        ASSERT_TRUE(lift.ok) << "seed " << seed << ": " << lift.error;
        RecordBus iBus;
        ir::EvalConfig ic;
        ic.maxCycles = 1'000'000;
        ir::Outcome io = ir::evalModule(lift.module, iBus, ic);

        bool mDone = mo.status == MachineStatus::Done;
        bool iDone = io.status == ir::Outcome::Status::Done;
        EXPECT_EQ(mDone, iDone)
            << "seed " << seed << ": " << mo.diagnostic << " vs "
            << io.diagnostic;
        EXPECT_EQ(m.cycles(), io.cycles) << "seed " << seed;
        EXPECT_TRUE(mBus.ops == iBus.ops) << "seed " << seed;
        if (mDone && iDone) {
            ASSERT_TRUE(mo.value && io.value) << "seed " << seed;
            EXPECT_TRUE(Value::equal(*mo.value, *io.value))
                << "seed " << seed << ": " << mo.value->toString()
                << " vs " << io.value->toString();
        }
    }
}

TEST(IrDeterminism, ReportsByteIdenticalAcrossRunsAndThreads)
{
    FuzzConfig a;
    a.seed = 23;
    a.rounds = 3;
    a.perRound = 24;
    a.threads = 1;
    ASSERT_TRUE(a.oracle.compareIr);
    FuzzConfig b = a;
    b.threads = 4;

    FuzzResult ra = runFuzz(a);
    FuzzResult ra2 = runFuzz(a);
    FuzzResult rb = runFuzz(b);
    EXPECT_TRUE(ra.clean())
        << (ra.findings.empty() ? std::string()
                                : ra.findings[0].detail);
    EXPECT_EQ(ra.summary(), ra2.summary());
    EXPECT_EQ(ra.summary(), rb.summary());
    ASSERT_EQ(ra.retained.size(), rb.retained.size());
    for (size_t i = 0; i < ra.retained.size(); ++i)
        EXPECT_EQ(imageHash(ra.retained[i]),
                  imageHash(rb.retained[i]))
            << "retained entry " << i << " differs";
    EXPECT_EQ(ra.coverage.summary(), rb.coverage.summary());
}

TEST(IrMutationKill, BrokenAllocChargeIsCaughtByCampaign)
{
    IrDefectGuard defect(ir::testhooks::irBrokenAllocCharge);
    FuzzConfig cfg;
    cfg.seed = 3;
    cfg.rounds = 10;
    cfg.perRound = 32;
    cfg.maxDivergences = 1;
    FuzzResult res = runFuzz(cfg);
    ASSERT_FALSE(res.findings.empty())
        << "oracle failed to catch the seeded IR ledger defect in "
        << res.executed << " executions";
    EXPECT_LE(res.executed, cfg.rounds * cfg.perRound);
    EXPECT_NE(res.findings[0].detail.find("uop-vs-ir"),
              std::string::npos)
        << res.findings[0].detail;
    EXPECT_EQ(res.findings[0].hash,
              imageHash(res.findings[0].image));
}

/** A two-field constructor whose case branch is order-sensitive:
 *  reversing the field pushes swaps which field `result` yields. */
Image
pairImage()
{
    Program p = assembleOrDie(R"(
con Pair first second

fun main =
  let p = Pair 1 2
  case p of
    Pair a b =>
      result a
  else
    result 9
)");
    return encodeProgram(p);
}

TEST(IrMutationKill, BrokenCaseFieldOrderIsCaughtByOracle)
{
    Image img = pairImage();
    ASSERT_EQ(runOracle(img).verdict, Verdict::Agree);

    IrDefectGuard defect(ir::testhooks::irBrokenCaseFieldOrder);
    OracleResult o = runOracle(img);
    ASSERT_EQ(o.verdict, Verdict::Divergence)
        << "reversed field order survived the oracle";
    EXPECT_NE(o.detail.find("uop-vs-ir"), std::string::npos)
        << o.detail;
}

} // namespace
} // namespace zarf::fuzz
