/**
 * @file
 * Prelude tests: every library function exercised on the lazy
 * engine, key programs cross-checked on the big-step oracle and the
 * cycle-level machine, and algebraic properties (reverse involution,
 * append/length homomorphism, fold/map fusion facts) property-tested
 * over random lists.
 */

#include <gtest/gtest.h>

#include "isa/binary.hh"
#include "machine/machine.hh"
#include "sem/bigstep.hh"
#include "sem/smallstep.hh"
#include "support/logging.hh"
#include "support/random.hh"
#include "zasm/prelude.hh"
#include "zasm/zasm.hh"

namespace zarf
{
namespace
{

/** Assemble main-body text with the prelude appended. */
Program
prog(const std::string &mainText)
{
    return assembleOrDie(mainText + preludeText());
}

ValuePtr
evalMain(const std::string &mainText)
{
    Program p = prog(mainText);
    NullBus bus;
    SmallStep ss(p, bus);
    RunResult r = ss.runMain();
    EXPECT_TRUE(r.ok()) << r.where;
    return r.value;
}

SWord
intMain(const std::string &mainText)
{
    ValuePtr v = evalMain(mainText);
    EXPECT_TRUE(v && v->isInt())
        << (v ? v->toString() : "<null>");
    return v && v->isInt() ? v->intVal() : -999999;
}

TEST(Prelude, Combinators)
{
    EXPECT_EQ(intMain("fun main =\n  let r = id 42\n  result r\n"),
              42);
    EXPECT_EQ(intMain(
                  "fun main =\n  let r = constK 42 7\n  result r\n"),
              42);
    EXPECT_EQ(intMain(R"(
fun main =
  let addOne = add 1
  let dbl = dblF
  let f = compose addOne dbl
  let r = f 20
  result r
fun dblF x =
  let y = add x x
  result y
)"),
              41);
    EXPECT_EQ(intMain(R"(
fun main =
  let sb = sub
  let f = flip sb
  let r = f 2 44
  result r
)"),
              42);
    EXPECT_EQ(intMain("fun main =\n  let a = bnot01 0\n"
                      "  let b = bnot01 1\n  let r = sub a b\n"
                      "  result r\n"),
              1);
}

TEST(Prelude, PairsAndOptions)
{
    EXPECT_EQ(intMain(R"(
fun main =
  let p = Pair 40 2
  let a = fst p
  let b = snd p
  let r = add a b
  result r
)"),
              42);
    EXPECT_EQ(intMain(R"(
fun main =
  let s = Some 42
  let r = fromSome 0 s
  result r
)"),
              42);
    EXPECT_EQ(intMain(R"(
fun main =
  let n = None
  let r = fromSome 42 n
  result r
)"),
              42);
}

TEST(Prelude, RangeSumLength)
{
    // sum [1..20] = 210; length [1..20] = 20.
    EXPECT_EQ(intMain(R"(
fun main =
  let xs = rangeL 1 20
  let s = sum xs
  let n = length xs
  let r = add s n
  result r
)"),
              230);
    // Empty range.
    EXPECT_EQ(intMain(R"(
fun main =
  let xs = rangeL 5 1
  let n = length xs
  result n
)"),
              0);
}

TEST(Prelude, MapFilterFold)
{
    // sum (map (*2) [1..10]) = 110
    EXPECT_EQ(intMain(R"(
fun main =
  let dbl = mul 2
  let xs = rangeL 1 10
  let ys = mapL dbl xs
  let s = sum ys
  result s
)"),
              110);
    // sum (filter even [1..10]) = 30
    EXPECT_EQ(intMain(R"(
fun main =
  let xs = rangeL 1 10
  let even = evenF
  let ys = filterL even xs
  let s = sum ys
  result s
fun evenF x =
  let m = mod x 2
  let r = eq m 0
  result r
)"),
              30);
    // foldr (-) 0 [1,2,3] = 1-(2-(3-0)) = 2
    EXPECT_EQ(intMain(R"(
fun main =
  let xs = rangeL 1 3
  let f = subF
  let r = foldr f 0 xs
  result r
fun subF a b =
  let r = sub a b
  result r
)"),
              2);
    EXPECT_EQ(intMain(R"(
fun main =
  let xs = rangeL 1 5
  let r = product xs
  result r
)"),
              120);
}

TEST(Prelude, TakeDropAppendReverse)
{
    // sum (take 3 [10..20]) = 33; sum (drop 8 [1..10]) = 19.
    EXPECT_EQ(intMain(R"(
fun main =
  let xs = rangeL 10 20
  let ys = take 3 xs
  let s = sum ys
  result s
)"),
              33);
    EXPECT_EQ(intMain(R"(
fun main =
  let xs = rangeL 1 10
  let ys = drop 8 xs
  let s = sum ys
  result s
)"),
              19);
    // append/reverse: sum preserved, head of reverse = last.
    EXPECT_EQ(intMain(R"(
fun main =
  let xs = rangeL 1 4
  let ys = rangeL 5 8
  let zs = append xs ys
  let rz = reverse zs
  case rz of
    Cons h t =>
      result h
  else
    result -1
)"),
              8);
}

TEST(Prelude, SearchFunctions)
{
    EXPECT_EQ(intMain(R"(
fun main =
  let xs = rangeL 1 10
  let a = elemL 7 xs
  let b = elemL 11 xs
  let r = sub a b
  result r
)"),
              1);
    EXPECT_EQ(intMain(R"(
fun main =
  let xs = rangeL 10 20
  let o = nth 5 xs
  let r = fromSome -1 o
  result r
)"),
              15);
    EXPECT_EQ(intMain(R"(
fun main =
  let xs = rangeL 10 12
  let o = nth 9 xs
  let r = fromSome -1 o
  result r
)"),
              -1);
    EXPECT_EQ(intMain(R"(
fun main =
  let xs = rangeL 1 5
  let m = maximumL xs
  let r = fromSome -1 m
  result r
)"),
              5);
}

TEST(Prelude, ZipAllAny)
{
    // sum (zipWith (*) [1..4] [10,20,30,40]) = 10+40+90+160 = 300.
    EXPECT_EQ(intMain(R"(
fun main =
  let xs = rangeL 1 4
  let t = mul 10
  let ys = mapL t xs
  let m = mulF
  let zs = zipWith m xs ys
  let s = sum zs
  result s
)"),
              300);
    EXPECT_EQ(intMain(R"(
fun main =
  let xs = rangeL 1 5
  let pos = posF
  let big = bigF
  let a = allL pos xs
  let b = anyL big xs
  let r = add a b
  result r
fun posF x =
  let r = gt x 0
  result r
fun bigF x =
  let r = gt x 100
  result r
)"),
              1);
}

TEST(Prelude, AssocLookup)
{
    EXPECT_EQ(intMain(R"(
fun main =
  let n = Nil
  let p1 = Pair 1 10
  let p2 = Pair 2 20
  let l1 = Cons p2 n
  let l2 = Cons p1 l1
  let found = lookupL 2 l2
  let missing = lookupL 3 l2
  let a = fromSome -1 found
  let b = fromSome -1 missing
  let r = add a b
  result r
)"),
              19);
}

// ----------------------------------------------------------------
// Algebraic properties over random lists, on the machine.
// ----------------------------------------------------------------

class PreludeProps : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(PreludeProps, ReverseAndAppendLaws)
{
    Rng rng(GetParam() * 97 + 3);
    int lo = int(rng.range(-20, 10));
    int hi = lo + int(rng.range(0, 12));
    std::string text = strprintf(R"(
fun main =
  let xs = rangeL %d %d
  # reverse (reverse xs) == xs: compare sums and lengths and heads
  let rr = reverse xs
  let rrr = reverse rr
  let s1 = sum xs
  let s2 = sum rrr
  let d1 = sub s1 s2
  let n1 = length xs
  let n2 = length rr
  let d2 = sub n1 n2
  # length (append xs xs) == 2 * length xs
  let ap = append xs xs
  let n3 = length ap
  let n4 = mul n1 2
  let d3 = sub n3 n4
  # sum (map (+1) xs) == sum xs + length xs
  let inc = add 1
  let ms = mapL inc xs
  let s3 = sum ms
  let s4 = add s1 n1
  let d4 = sub s3 s4
  let e1 = add d1 d2
  let e2 = add d3 d4
  let r = add e1 e2
  result r
)",
                                 lo, hi);
    Program p = assembleOrDie(text + preludeText());

    NullBus bus1, bus2;
    BigStep bs(p, bus1);
    EvalResult er = bs.runMain();
    ASSERT_TRUE(er.ok());
    EXPECT_EQ(er.value->intVal(), 0) << "law violated (bigstep)";

    Machine m(encodeProgram(p), bus2);
    Machine::Outcome o = m.run();
    ASSERT_EQ(o.status, MachineStatus::Done) << o.diagnostic;
    EXPECT_EQ(o.value->intVal(), 0) << "law violated (machine)";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreludeProps,
                         ::testing::Range(uint64_t(0), uint64_t(40)));

TEST(Prelude, WorksOnAllThreeEngines)
{
    std::string text = R"(
fun main =
  let xs = rangeL 1 12
  let sq = sqF
  let ys = mapL sq xs
  let f = addF
  let s = foldl f 0 ys
  result s
fun sqF x =
  let y = mul x x
  result y
)";
    Program p = assembleOrDie(text + preludeText());
    NullBus b1, b2, b3;
    BigStep bs(p, b1);
    SmallStep ss(p, b2);
    Machine m(encodeProgram(p), b3);
    EvalResult er = bs.runMain();
    RunResult rr = ss.runMain();
    Machine::Outcome o = m.run();
    ASSERT_TRUE(er.ok() && rr.ok());
    ASSERT_EQ(o.status, MachineStatus::Done);
    EXPECT_EQ(er.value->intVal(), 650); // sum of squares 1..12
    EXPECT_TRUE(Value::equal(*er.value, *rr.value));
    EXPECT_TRUE(Value::equal(*er.value, *o.value));
}

} // namespace
} // namespace zarf
