/**
 * @file
 * Word-level encoding tests: every pack/unpack pair must round-trip
 * across its full field ranges (paper, Fig. 4d).
 */

#include <gtest/gtest.h>

#include "isa/encoding.hh"

namespace zarf
{
namespace
{

TEST(Encoding, LetRoundTrip)
{
    for (CalleeKind k : { CalleeKind::Func, CalleeKind::Local,
                          CalleeKind::Arg }) {
        for (Word nargs : { 0u, 1u, 5u, kMaxArgs }) {
            for (Word id : { 0u, 1u, 0x100u, 0xffffu }) {
                Word w = packLet(k, nargs, id);
                EXPECT_EQ(opOf(w), Op::Let);
                LetWord d = unpackLet(w);
                EXPECT_EQ(d.kind, k);
                EXPECT_EQ(d.nargs, nargs);
                EXPECT_EQ(d.id, id);
            }
        }
    }
}

class OperandRoundTrip : public ::testing::TestWithParam<Operand>
{};

TEST_P(OperandRoundTrip, PackUnpack)
{
    Operand op = GetParam();
    Word w = packOperand(op);
    EXPECT_EQ(opOf(w), Op::Arg);
    Operand d = unpackOperand(w);
    EXPECT_EQ(d.src, op.src);
    EXPECT_EQ(d.val, op.val);
}

INSTANTIATE_TEST_SUITE_P(
    AllSources, OperandRoundTrip,
    ::testing::Values(
        opLocal(0), opLocal(7), opLocal(SWord(kMaxSlotIndex)),
        opArg(0), opArg(3), opArg(SWord(kMaxSlotIndex)),
        opImm(0), opImm(1), opImm(-1), opImm(360), opImm(-360),
        opImm(kMaxImm), opImm(kMinImm)));

TEST(Encoding, CaseScrutRoundTrip)
{
    Word w = packCase(opArg(2));
    EXPECT_EQ(opOf(w), Op::Case);
    Operand d = unpackCaseScrut(w);
    EXPECT_EQ(d.src, Src::Arg);
    EXPECT_EQ(d.val, 2);
}

TEST(Encoding, PatLitRoundTrip)
{
    for (Word skip : { 0u, 1u, 100u, kMaxSkip }) {
        for (SWord lit : { SWord(0), SWord(42), SWord(-42),
                           kMaxPatLit, kMinPatLit }) {
            Word w = packPatLit(skip, lit);
            EXPECT_EQ(opOf(w), Op::PatLit);
            PatWord p = unpackPat(w);
            EXPECT_FALSE(p.isCons);
            EXPECT_EQ(p.skip, skip);
            EXPECT_EQ(p.lit, lit);
        }
    }
}

TEST(Encoding, PatConsRoundTrip)
{
    Word w = packPatCons(17, 0x104);
    PatWord p = unpackPat(w);
    EXPECT_TRUE(p.isCons);
    EXPECT_EQ(p.skip, 17u);
    EXPECT_EQ(p.consId, 0x104u);
}

TEST(Encoding, ResultRoundTrip)
{
    Operand d = unpackResult(packResult(opImm(-5)));
    EXPECT_EQ(d.src, Src::Imm);
    EXPECT_EQ(d.val, -5);
}

TEST(Encoding, InfoRoundTrip)
{
    for (bool cons : { false, true }) {
        for (Word locals : { 0u, 3u, kMaxLocals }) {
            for (Word arity : { 0u, 2u, 32u, kMaxArity }) {
                InfoWord i = unpackInfo(packInfo(cons, locals, arity));
                EXPECT_EQ(i.isCons, cons);
                EXPECT_EQ(i.numLocals, locals);
                EXPECT_EQ(i.arity, arity);
            }
        }
    }
}

TEST(Encoding, OpcodesAreDistinct)
{
    // Every word kind must be distinguishable from its top nibble.
    EXPECT_NE(opOf(packLet(CalleeKind::Func, 0, 0)),
              opOf(packOperand(opImm(0))));
    EXPECT_NE(opOf(packCase(opArg(0))), opOf(packPatElse()));
    EXPECT_NE(opOf(packResult(opImm(0))), opOf(packInfo(false, 0, 0)));
}

TEST(Encoding, WrapInt31)
{
    EXPECT_EQ(wrapInt31(0), 0);
    EXPECT_EQ(wrapInt31(5), 5);
    EXPECT_EQ(wrapInt31(-5), -5);
    EXPECT_EQ(wrapInt31(kIntMax), kIntMax);
    EXPECT_EQ(wrapInt31(kIntMin), kIntMin);
    // Overflow wraps around the 31-bit ring.
    EXPECT_EQ(wrapInt31(int64_t(kIntMax) + 1), kIntMin);
    EXPECT_EQ(wrapInt31(int64_t(kIntMin) - 1), kIntMax);
}

} // namespace
} // namespace zarf
