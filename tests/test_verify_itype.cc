/**
 * @file
 * Integrity type system tests (Sec. 5.3): lattice and subtyping
 * algebra, acceptance of well-typed flows, rejection of explicit and
 * implicit untrusted-to-trusted flows, type-checking of the full ICD
 * kernel program, and dynamic non-interference validation via the
 * perturbation harness.
 */

#include <gtest/gtest.h>

#include "icd/zarf_icd.hh"
#include "lowlevel/extract.hh"
#include "verify/icd_types.hh"
#include "verify/itype.hh"
#include "verify/nidemo.hh"
#include "verify/noninterference.hh"

namespace zarf::verify
{
namespace
{

TEST(ITypeAlgebra, Lattice)
{
    EXPECT_TRUE(flowsTo(Label::T, Label::U));
    EXPECT_TRUE(flowsTo(Label::T, Label::T));
    EXPECT_TRUE(flowsTo(Label::U, Label::U));
    EXPECT_FALSE(flowsTo(Label::U, Label::T));
    EXPECT_EQ(join(Label::T, Label::T), Label::T);
    EXPECT_EQ(join(Label::T, Label::U), Label::U);
}

TEST(ITypeAlgebra, NumSubtyping)
{
    EXPECT_TRUE(subtype(tNum(Label::T), tNum(Label::U)));
    EXPECT_FALSE(subtype(tNum(Label::U), tNum(Label::T)));
    EXPECT_TRUE(subtype(tNum(Label::T), tNum(Label::T)));
}

TEST(ITypeAlgebra, BottomIsLeast)
{
    EXPECT_TRUE(subtype(tBottom(), tNum(Label::T)));
    EXPECT_TRUE(subtype(tBottom(), tData(3, Label::T)));
    ITypePtr j = joinTypes(tBottom(), tNum(Label::T));
    ASSERT_TRUE(j);
    EXPECT_EQ(j->kind, IType::Kind::Num);
}

TEST(ITypeAlgebra, FunSubtypingIsContravariant)
{
    // (num^U -> num^T) <= (num^T -> num^U)
    ITypePtr a = tFun({ tNum(Label::U) }, tNum(Label::T));
    ITypePtr b = tFun({ tNum(Label::T) }, tNum(Label::U));
    EXPECT_TRUE(subtype(a, b));
    EXPECT_FALSE(subtype(b, a));
}

TEST(ITypeAlgebra, JoinRejectsShapeMismatch)
{
    EXPECT_FALSE(joinTypes(tNum(Label::T), tData(0, Label::T)));
    EXPECT_FALSE(joinTypes(tData(0, Label::T), tData(1, Label::T)));
}

TEST(ITypeAlgebra, RaiseTaints)
{
    ITypePtr t = raise(tNum(Label::T), Label::U);
    EXPECT_EQ(t->label, Label::U);
    EXPECT_EQ(raise(tNum(Label::T), Label::T)->label, Label::T);
}

// ----------------------------------------------------------------
// Whole-program checking on the demo programs
// ----------------------------------------------------------------

TEST(ITypeCheck, CleanDemoIsWellTyped)
{
    Program p = buildNiDemo(NiVariant::Clean);
    TypeEnv env = niDemoTypeEnv(p);
    ITypeReport r = checkIntegrity(p, env);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(ITypeCheck, ExplicitFlowRejected)
{
    Program p = buildNiDemo(NiVariant::ExplicitFlow);
    TypeEnv env = niDemoTypeEnv(p);
    ITypeReport r = checkIntegrity(p, env);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("putint"), std::string::npos)
        << r.summary();
}

TEST(ITypeCheck, ImplicitFlowRejected)
{
    Program p = buildNiDemo(NiVariant::ImplicitFlow);
    TypeEnv env = niDemoTypeEnv(p);
    ITypeReport r = checkIntegrity(p, env);
    EXPECT_FALSE(r.ok());
}

TEST(ITypeCheck, MissingSignatureReported)
{
    Program p = buildNiDemo(NiVariant::Clean);
    TypeEnv env = niDemoTypeEnv(p);
    env.funs.erase(env.funs.begin());
    ITypeReport r = checkIntegrity(p, env);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("signature"), std::string::npos);
}

// ----------------------------------------------------------------
// The headline result: the ICD kernel type-checks
// ----------------------------------------------------------------

TEST(ITypeCheck, IcdStepProgramIsWellTyped)
{
    Program p = icd::buildIcdStepProgram();
    TypeEnv env = icdKernelTypeEnv(p);
    ITypeReport r = checkIntegrity(p, env);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(ITypeCheck, FullKernelIsWellTyped)
{
    Program p = ll::extractOrDie(icd::buildKernelLowLevel());
    TypeEnv env = icdKernelTypeEnv(p);
    ITypeReport r = checkIntegrity(p, env);
    EXPECT_TRUE(r.ok()) << r.summary();
}

TEST(ITypeCheck, CorruptedKernelRejected)
{
    // Relabel the ECG input port untrusted: the whole trusted
    // pipeline is now fed by a U source and must fail to check.
    Program p = ll::extractOrDie(icd::buildKernelLowLevel());
    TypeEnv env = icdKernelTypeEnv(p);
    env.ports[0] = Label::U; // sensor now untrusted
    ITypeReport r = checkIntegrity(p, env);
    EXPECT_FALSE(r.ok());
}

// ----------------------------------------------------------------
// Dynamic non-interference (the soundness corollary)
// ----------------------------------------------------------------

std::vector<SWord>
sensorStream()
{
    std::vector<SWord> s;
    for (int i = 0; i < 64; ++i)
        s.push_back(i * 13 % 97 - 40);
    return s;
}

TEST(NonInterference, CleanDemoIsNonInterfering)
{
    Program p = buildNiDemo(NiVariant::Clean);
    TypeEnv env = niDemoTypeEnv(p);
    ASSERT_TRUE(checkIntegrity(p, env).ok());
    for (uint64_t seed = 0; seed < 8; ++seed) {
        NiReport r = perturbUntrusted(p, env, sensorStream(),
                                      seed * 2 + 1, seed * 2 + 2);
        ASSERT_TRUE(r.ran) << r.detail;
        EXPECT_FALSE(r.interference) << r.detail;
    }
}

TEST(NonInterference, ExplicitFlowDetectedDynamically)
{
    Program p = buildNiDemo(NiVariant::ExplicitFlow);
    TypeEnv env = niDemoTypeEnv(p);
    NiReport r = perturbUntrusted(p, env, sensorStream(), 1, 2);
    ASSERT_TRUE(r.ran) << r.detail;
    EXPECT_TRUE(r.interference);
}

TEST(NonInterference, ImplicitFlowDetectedDynamically)
{
    Program p = buildNiDemo(NiVariant::ImplicitFlow);
    TypeEnv env = niDemoTypeEnv(p);
    NiReport r = perturbUntrusted(p, env, sensorStream(), 3, 4);
    ASSERT_TRUE(r.ran) << r.detail;
    EXPECT_TRUE(r.interference);
}

class NiSeeds : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(NiSeeds, SoundnessHoldsAcrossSeeds)
{
    // The theorem, sampled: a well-typed program's trusted outputs
    // are identical under arbitrary untrusted perturbation.
    Program p = buildNiDemo(NiVariant::Clean, 40);
    TypeEnv env = niDemoTypeEnv(p);
    NiReport r = perturbUntrusted(p, env, sensorStream(),
                                  GetParam() * 7 + 1,
                                  GetParam() * 11 + 5);
    ASSERT_TRUE(r.ran) << r.detail;
    EXPECT_FALSE(r.interference) << r.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NiSeeds,
                         ::testing::Range(uint64_t(0), uint64_t(25)));

} // namespace
} // namespace zarf::verify
