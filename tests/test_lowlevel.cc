/**
 * @file
 * Extractor tests: ANF conversion of the low-level IR, continuation
 * duplication for iff, match lowering, sharing via letIn, and
 * end-to-end execution of extracted programs.
 */

#include <gtest/gtest.h>

#include "isa/validate.hh"
#include "lowlevel/extract.hh"
#include "sem/bigstep.hh"
#include "zasm/zasm.hh"

namespace zarf::ll
{
namespace
{

SWord
runMain(const LProgram &lp)
{
    Program p = extractOrDie(lp);
    NullBus bus;
    BigStep bs(p, bus);
    EvalResult r = bs.runMain();
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.value && r.value->isInt())
        << (r.value ? r.value->toString() : "<null>");
    return r.value && r.value->isInt() ? r.value->intVal() : 0;
}

TEST(Extract, NestedCallsFlattenToAnf)
{
    LProgram lp;
    // main = (1 + 2) * (10 - 3)
    lp.fn("main", {}, (lit(1) + lit(2)) * (lit(10) - lit(3)));
    EXPECT_EQ(runMain(lp), 21);

    // The extracted body is a chain of single-application lets.
    ExtractResult r = extract(lp);
    ASSERT_TRUE(r.ok);
    Program p = r.builder.build();
    const Expr *e = p.decls[0].body.get();
    int lets = 0;
    while (e->isLet()) {
        // Every let applies to already-bound atoms only.
        ++lets;
        e = e->asLet().body.get();
    }
    EXPECT_EQ(lets, 3); // add, sub, mul
    EXPECT_TRUE(e->isResult());
}

TEST(Extract, FunctionsAndParams)
{
    LProgram lp;
    lp.fn("main", {}, call("f", { lit(20), lit(1) }));
    lp.fn("f", { "a", "b" }, v("a") * lit(2) + v("b") * lit(2));
    EXPECT_EQ(runMain(lp), 42);
}

TEST(Extract, SelIsBranchFree)
{
    LProgram lp;
    lp.fn("main", {},
          sel(lit(1), lit(42), lit(7)) +
              sel(lit(0), lit(100), lit(0)));
    EXPECT_EQ(runMain(lp), 42);
    // No case instructions in the extraction.
    Program p = extractOrDie(lp);
    const Expr *e = p.decls[0].body.get();
    while (e->isLet())
        e = e->asLet().body.get();
    EXPECT_TRUE(e->isResult());
}

TEST(Extract, IffDuplicatesContinuation)
{
    LProgram lp;
    // main = (if 1 then 40 else 1) + 2 — the +2 happens in both arms.
    lp.fn("main", {}, iff(lit(1), lit(40), lit(1)) + lit(2));
    EXPECT_EQ(runMain(lp), 42);

    Program p = extractOrDie(lp);
    // Expect a case with the add duplicated in branch and else.
    size_t nodes = exprNodeCount(*p.decls[0].body);
    EXPECT_GE(nodes, 5u); // case + 2 × (let add + result)
}

TEST(Extract, MatchBindsFields)
{
    LProgram lp;
    lp.cons("Pair", 2);
    lp.fn("main", {},
          letIn("p", call("Pair", { lit(40), lit(2) }),
                match(v("p"),
                      { onCons("Pair", { "x", "y" },
                               v("x") + v("y")) },
                      nullptr)));
    EXPECT_EQ(runMain(lp), 42);
}

TEST(Extract, MatchWithoutElseYieldsError)
{
    LProgram lp;
    lp.cons("A", 0);
    lp.cons("B", 0);
    lp.fn("main", {},
          letIn("a", call("A", {}),
                match(v("a"), { onCons("B", {}, lit(1)) }, nullptr)));
    Program p = extractOrDie(lp);
    NullBus bus;
    BigStep bs(p, bus);
    EvalResult r = bs.runMain();
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.value->isError());
}

TEST(Extract, LetInSharing)
{
    LProgram lp;
    lp.fn("main", {},
          letIn("x", lit(5) * lit(4),
                v("x") + v("x") + lit(2)));
    EXPECT_EQ(runMain(lp), 42);
    // The rhs is computed once: exactly 3 lets (mul, add, add).
    Program p = extractOrDie(lp);
    const Expr *e = p.decls[0].body.get();
    int lets = 0;
    while (e->isLet()) {
        ++lets;
        e = e->asLet().body.get();
    }
    EXPECT_EQ(lets, 3);
}

TEST(Extract, HigherOrderThroughLocal)
{
    LProgram lp;
    lp.fn("main", {},
          letIn("f", call("adder", { lit(40) }),
                call("f", { lit(2) })));
    lp.fn("adder", { "a", "b" }, v("a") + v("b"));
    EXPECT_EQ(runMain(lp), 42);
}

TEST(Extract, ReportsUnboundVariable)
{
    LProgram lp;
    lp.fn("main", {}, v("ghost"));
    ExtractResult r = extract(lp);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("ghost"), std::string::npos);
}

TEST(Extract, ReportsUnknownCallee)
{
    LProgram lp;
    lp.fn("main", {}, call("nachos", { lit(1) }));
    ExtractResult r = extract(lp);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("nachos"), std::string::npos);
}

TEST(Extract, ExtractedProgramsValidate)
{
    LProgram lp;
    lp.cons("Triple", 3);
    lp.fn("main", {},
          letIn("t", call("Triple", { lit(1), lit(2), lit(3) }),
                match(v("t"),
                      { onCons("Triple", { "a", "b", "c" },
                               iff(v("a") < v("b"),
                                   v("b") * v("c"),
                                   v("a"))) },
                      lit(0))));
    Program p = extractOrDie(lp);
    EXPECT_TRUE(validateProgram(p).ok());
    NullBus bus;
    BigStep bs(p, bus);
    EXPECT_EQ(bs.runMain().value->intVal(), 6);
}

TEST(Extract, PrintersProduceReadableForms)
{
    LProgram lp;
    lp.cons("Pair", 2);
    lp.fn("main", {},
          letIn("p", call("Pair", { lit(1), lit(2) }),
                match(v("p"),
                      { onCons("Pair", { "x", "y" },
                               v("x") + v("y")) },
                      lit(0))));
    std::string ir = printLProgram(lp);
    EXPECT_NE(ir.find("Definition main"), std::string::npos);
    EXPECT_NE(ir.find("match"), std::string::npos);
    // The extracted assembly disassembles cleanly too.
    std::string asmText = disassemble(extractOrDie(lp));
    EXPECT_NE(asmText.find("main"), std::string::npos);
}

} // namespace
} // namespace zarf::ll
