/**
 * @file
 * WCET soundness property: on randomly generated first-order
 * programs (the analyzer's domain), the static execution bound must
 * dominate the cycles the machine actually spends, and the static
 * allocation profile must dominate the machine's actual allocation.
 */

#include <gtest/gtest.h>

#include "fuzz/genprog.hh"
#include "isa/binary.hh"
#include "machine/machine.hh"
#include "verify/wcet.hh"

namespace zarf::verify
{
namespace
{

class WcetProperty : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(WcetProperty, BoundDominatesMachine)
{
    fuzz::GenConfig gcfg;
    gcfg.firstOrder = true;
    gcfg.allowErrors = false;
    gcfg.numCons = 3;
    gcfg.numFuncs = 6;
    gcfg.maxDepth = 5;
    fuzz::ProgramGenerator gen(GetParam() * 48271 + 11, gcfg);
    BuildResult b = gen.generate().tryBuild();
    ASSERT_TRUE(b.ok) << b.error;

    WcetReport r = analyzeWcet(b.program, "main");
    ASSERT_TRUE(r.ok) << r.error;

    NullBus bus;
    MachineConfig mcfg;
    mcfg.semispaceWords = 1u << 20; // no collection during the run
    Machine m(encodeProgram(b.program), bus, mcfg);
    Machine::Outcome o = m.run();
    ASSERT_EQ(o.status, MachineStatus::Done) << o.diagnostic;

    const MachineStats &s = m.stats();
    ASSERT_EQ(s.gcRuns, 0u);
    // Execution cycles exclude loading; allow the boot thunk's
    // small constant.
    // The analyzer assumes type-correct programs (the paper relies
    // on Hindley-Milner typing to rule out runtime Error values);
    // the generator is untyped, so allow for the machine's Error
    // constructions (2 words each) and the boot thunk.
    Cycles observed = m.cycles() - s.loadCycles;
    EXPECT_GE(r.execBound + 16 + 8 * s.errorsCreated, observed)
        << "bound " << r.execBound << " vs observed " << observed;

    EXPECT_GE(r.allocWords + 2 + 2 * s.errorsCreated,
              s.allocatedWords);
    EXPECT_GE(r.allocObjects + 1 + s.errorsCreated, s.allocations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WcetProperty,
                         ::testing::Range(uint64_t(0), uint64_t(120)));

} // namespace
} // namespace zarf::verify
