/**
 * @file
 * Differential testing of the predecoded µop execution path against
 * the word-walking reference path (machine/predecode.hh). The µop
 * machine must be bit-identical in results, total cycle counts, and
 * every statistic — on random programs, under GC pressure, and on
 * the full ICD kernel — plus the load-time structural validation
 * that predecoding hoists out of the per-step hot path.
 */

#include <gtest/gtest.h>

#include "fuzz/genprog.hh"
#include "ecg/synth.hh"
#include "icd/zarf_icd.hh"
#include "isa/binary.hh"
#include "isa/encoding.hh"
#include "machine/machine.hh"
#include "system/ports.hh"

namespace zarf
{
namespace
{

/** Require every statistic to be identical between the two paths. */
void
expectStatsEqual(const MachineStats &a, const MachineStats &b)
{
    EXPECT_EQ(a.let.count, b.let.count);
    EXPECT_EQ(a.let.cycles, b.let.cycles);
    EXPECT_EQ(a.caseInstr.count, b.caseInstr.count);
    EXPECT_EQ(a.caseInstr.cycles, b.caseInstr.cycles);
    EXPECT_EQ(a.result.count, b.result.count);
    EXPECT_EQ(a.result.cycles, b.result.cycles);
    EXPECT_EQ(a.branchHeads, b.branchHeads);
    EXPECT_EQ(a.letArgs, b.letArgs);
    EXPECT_EQ(a.allocations, b.allocations);
    EXPECT_EQ(a.allocatedWords, b.allocatedWords);
    EXPECT_EQ(a.forces, b.forces);
    EXPECT_EQ(a.whnfHits, b.whnfHits);
    EXPECT_EQ(a.updates, b.updates);
    EXPECT_EQ(a.errorsCreated, b.errorsCreated);
    EXPECT_EQ(a.loadCycles, b.loadCycles);
    EXPECT_EQ(a.execCycles, b.execCycles);
    EXPECT_EQ(a.callsPerFunc, b.callsPerFunc);
    EXPECT_EQ(a.gcRuns, b.gcRuns);
    EXPECT_EQ(a.gcCycles, b.gcCycles);
    EXPECT_EQ(a.gcObjectsCopied, b.gcObjectsCopied);
    EXPECT_EQ(a.gcWordsCopied, b.gcWordsCopied);
    EXPECT_EQ(a.gcRefChecks, b.gcRefChecks);
    EXPECT_EQ(a.gcMaxLiveWords, b.gcMaxLiveWords);
    EXPECT_EQ(a.gcMaxPauseCycles, b.gcMaxPauseCycles);
}

MachineConfig
pathConfig(bool predecode, size_t semispaceWords = 1u << 20)
{
    MachineConfig cfg;
    cfg.usePredecode = predecode;
    cfg.semispaceWords = semispaceWords;
    return cfg;
}

void
runDifferential(uint64_t seed, size_t semispaceWords)
{
    fuzz::GenConfig gcfg;
    gcfg.numCons = 4;
    gcfg.numFuncs = 7;
    gcfg.maxDepth = 5;
    fuzz::ProgramGenerator gen(seed * 2654435761u + 7, gcfg);
    BuildResult b = gen.generate().tryBuild();
    ASSERT_TRUE(b.ok) << b.error;
    Image img = encodeProgram(b.program);

    NullBus busA, busB;
    Machine legacy(img, busA, pathConfig(false, semispaceWords));
    Machine uop(img, busB, pathConfig(true, semispaceWords));
    Machine::Outcome oa = legacy.run();
    Machine::Outcome ob = uop.run();

    ASSERT_EQ(oa.status, ob.status)
        << "legacy: " << oa.diagnostic << "\nuop: " << ob.diagnostic;
    EXPECT_EQ(legacy.cycles(), uop.cycles());
    if (oa.status == MachineStatus::Done) {
        ASSERT_TRUE(oa.value && ob.value);
        EXPECT_TRUE(Value::equal(*oa.value, *ob.value))
            << "legacy: " << oa.value->toString() << "\n"
            << "uop:    " << ob.value->toString();
    }
    expectStatsEqual(legacy.stats(), uop.stats());
}

class PredecodeDifferential : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(PredecodeDifferential, BitIdenticalOnRandomPrograms)
{
    runDifferential(GetParam(), 1u << 20);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredecodeDifferential,
                         ::testing::Range(uint64_t(0), uint64_t(120)));

class PredecodeGcDifferential
    : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(PredecodeGcDifferential, BitIdenticalUnderGcPressure)
{
    // A heap barely above the safe-point margin forces frequent
    // collections; GC cycle accounting and max-pause tracking must
    // still match exactly (same roots visited in the same order).
    runDifferential(GetParam(), 3 * 4096);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PredecodeGcDifferential,
                         ::testing::Range(uint64_t(0), uint64_t(60)));

// ----------------------------------------------------------------
// ICD kernel co-simulation workload
// ----------------------------------------------------------------

/** Back-to-back rig as in the Sec. 6 trace: the timer always
 *  fires, ECG samples come from a scripted heart. */
class BusyRig : public IoBus
{
  public:
    explicit BusyRig(ecg::Heart &h) : heart(h) {}

    SWord
    getInt(SWord port) override
    {
        if (port == sys::kPortTimer)
            return 1;
        if (port == sys::kPortEcgIn)
            return heart.nextSample();
        return 0;
    }

    void
    putInt(SWord port, SWord v) override
    {
        writes.push_back({ port, v });
    }

    ecg::Heart &heart;
    std::vector<std::pair<SWord, SWord>> writes;
};

TEST(PredecodeIcd, KernelTraceBitIdentical)
{
    // Include a VT episode so therapy paths execute in both runs.
    ecg::ScriptedHeart heartA({ { 20.0, 75.0 }, { 40.0, 190.0 } },
                              42);
    ecg::ScriptedHeart heartB({ { 20.0, 75.0 }, { 40.0, 190.0 } },
                              42);
    BusyRig rigA(heartA), rigB(heartB);
    Image img = icd::buildKernelImage();
    Machine legacy(img, rigA, pathConfig(false));
    Machine uop(img, rigB, pathConfig(true));

    while (legacy.cycles() < 3'000'000 &&
           legacy.advance(500'000) == MachineStatus::Running) {}
    while (uop.cycles() < 3'000'000 &&
           uop.advance(500'000) == MachineStatus::Running) {}

    EXPECT_EQ(legacy.cycles(), uop.cycles());
    EXPECT_EQ(rigA.writes, rigB.writes);
    expectStatsEqual(legacy.stats(), uop.stats());
}

// ----------------------------------------------------------------
// Load-time structural validation (hoisted srcFieldValid checks)
// ----------------------------------------------------------------

/** A minimal hand-built image: main with the given body words. */
Image
tinyImage(std::vector<Word> body)
{
    Image img;
    img.push_back(kMagic);
    img.push_back(1);
    img.push_back(packInfo(false, 8, 0));
    img.push_back(Word(body.size()));
    for (Word w : body)
        img.push_back(w);
    return img;
}

TEST(PredecodeLoader, ReservedSrcFieldRejectedAtLoad)
{
    // A result word with the reserved source encoding (value 3).
    Word bad = packResult({ Src::Imm, 42 }) | (3u << 26);
    Image img = tinyImage({ bad });

    NullBus bus;
    Machine m(img, bus, pathConfig(true));
    // Stuck immediately after load, before a single step runs.
    EXPECT_EQ(m.advance(0), MachineStatus::Stuck);
    Machine::Outcome o = m.run();
    EXPECT_EQ(o.status, MachineStatus::Stuck);
    EXPECT_NE(o.diagnostic.find("predecode"), std::string::npos)
        << o.diagnostic;

    // The word-walking path only notices at execution time, but
    // must reach the same verdict.
    NullBus bus2;
    Machine legacy(img, bus2, pathConfig(false));
    EXPECT_EQ(legacy.run().status, MachineStatus::Stuck);
}

TEST(PredecodeLoader, MalformedLetArgumentRejectedAtLoad)
{
    // let with one argument slot holding a non-ARG word.
    Image img = tinyImage({ packLet(CalleeKind::Func, 1, 0x01),
                            packPatElse(),
                            packResult({ Src::Local, 0 }) });
    NullBus bus;
    Machine m(img, bus, pathConfig(true));
    EXPECT_EQ(m.advance(0), MachineStatus::Stuck);

    NullBus bus2;
    Machine legacy(img, bus2, pathConfig(false));
    EXPECT_EQ(legacy.run().status, MachineStatus::Stuck);
}

TEST(PredecodeLoader, TruncatedPatternChainRejectedAtLoad)
{
    // A case whose pattern chain runs past the declaration end.
    Image img = tinyImage({ packCase({ Src::Imm, 1 }),
                            packPatLit(5, 1) });
    NullBus bus;
    Machine m(img, bus, pathConfig(true));
    EXPECT_EQ(m.advance(0), MachineStatus::Stuck);
}

TEST(PredecodeLoader, WellFormedImagesStillLoad)
{
    Image img = tinyImage({ packResult({ Src::Imm, 13 }) });
    NullBus bus;
    Machine m(img, bus, pathConfig(true));
    Machine::Outcome o = m.run();
    ASSERT_EQ(o.status, MachineStatus::Done) << o.diagnostic;
    EXPECT_EQ(o.value->toString(), "13");
}

// ----------------------------------------------------------------
// Poisoned operand resolution (out-of-range slots never produce a
// consumable value)
// ----------------------------------------------------------------

TEST(PredecodePoison, OutOfRangeArgStopsBothPaths)
{
    // main has arity 0; resolving arg #5 must fail, not silently
    // yield the valid tagged integer 0.
    Image img = tinyImage({ packResult({ Src::Arg, 5 }) });
    for (bool predecode : { false, true }) {
        NullBus bus;
        Machine m(img, bus, pathConfig(predecode));
        Machine::Outcome o = m.run();
        EXPECT_EQ(o.status, MachineStatus::Stuck);
        EXPECT_NE(o.diagnostic.find("argument index out of range"),
                  std::string::npos)
            << o.diagnostic;
        EXPECT_EQ(o.value, nullptr);
    }
}

TEST(PredecodePoison, OutOfRangeLetArgumentStopsBothPaths)
{
    Image img =
        tinyImage({ packLet(CalleeKind::Func, 1, 0x01),
                    packOperand({ Src::Local, 9 }),
                    packResult({ Src::Local, 0 }) });
    for (bool predecode : { false, true }) {
        NullBus bus;
        Machine m(img, bus, pathConfig(predecode));
        Machine::Outcome o = m.run();
        EXPECT_EQ(o.status, MachineStatus::Stuck);
        EXPECT_NE(o.diagnostic.find("local index out of range"),
                  std::string::npos)
            << o.diagnostic;
    }
}

} // namespace
} // namespace zarf
