/**
 * @file
 * Lifter soundness at the rejection boundary, and the canonical
 * operand-site walk it shares with the symbolic engine:
 *
 *  - structure-aware corruptions the decoder rejects (reserved
 *    operand-source bits, truncated argument lists, image prefixes)
 *    are rejected by the lifter too — a decoder-refused image never
 *    becomes well-formed IR;
 *  - conversely, whatever the lifter accepts the decoder accepted,
 *    on random bit-mutants of valid images (lift.ok ⇒ decode ok);
 *  - a callee id outside every table is *not* a rejection: it lifts
 *    to CalleeClass::Unknown and faults at evaluation time with the
 *    machine's exact status and cycle count (the decoder's documented
 *    wide-id leniency, carried through the IR unchanged);
 *  - the site walk (isa/sites.hh) the lifter uses to enumerate entry
 *    immediates is byte-identical to the recursive walk sym's
 *    collectSymSites shipped with before the IR existed — pointer
 *    list and value list both — so solver models keep landing on the
 *    same operand sites after the consolidation.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/testprogs.hh"
#include "fuzz/genprog.hh"
#include "ir/eval.hh"
#include "ir/lift.hh"
#include "isa/binary.hh"
#include "isa/encoding.hh"
#include "isa/sites.hh"
#include "machine/machine.hh"
#include "sem/io.hh"
#include "support/random.hh"
#include "sym/eval.hh"
#include "zasm/zasm.hh"

namespace zarf
{
namespace
{

/** A freshly generated, known-good image plus its declaration spans
 *  (offset of each decl's info word and one-past its body). */
struct SpannedImage
{
    Image img;
    std::vector<std::pair<size_t, size_t>> spans;
};

SpannedImage
generateSpanned(uint64_t seed)
{
    fuzz::ProgramGenerator gen(seed);
    BuildResult b = gen.generate().tryBuild();
    EXPECT_TRUE(b.ok);
    SpannedImage s;
    s.img = encodeProgram(b.program);
    size_t pos = 2;
    for (Word i = 0; i < s.img[1] && pos + 2 <= s.img.size(); ++i) {
        size_t len = s.img[pos + 1];
        s.spans.push_back({ pos, pos + 2 + len });
        pos += 2 + len;
    }
    return s;
}

/** The lifter must agree with the decoder gate on this image: both
 *  accept or both reject, never one without the other. */
void
expectGateAgreement(const Image &img)
{
    bool decodes = decodeProgram(img).ok;
    ir::LiftResult lift = ir::liftImage(img);
    if (!decodes) {
        EXPECT_FALSE(lift.ok)
            << "lifter accepted a decoder-rejected image";
    } else if (lift.ok) {
        // Accepted: the module must at least be structurally sane.
        EXPECT_FALSE(lift.module.funcs.empty());
    }
    // decode-ok + lift-reject is legitimate: the lifter also applies
    // the machine's stricter predecode gate (fuzz/oracle.hh).
}

class LiftStructured : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(LiftStructured, ReservedSrcBitsAreRejected)
{
    SpannedImage s = generateSpanned(GetParam() * 613 + 9);
    size_t tried = 0;
    for (auto [lo, hi] : s.spans) {
        for (size_t w = lo + 2; w < hi && tried < 8; ++w) {
            Op op = opOf(s.img[w]);
            if (op != Op::Arg && op != Op::Case && op != Op::Result)
                continue;
            ++tried;
            Image mut = s.img;
            mut[w] |= Word(3) << 26;
            EXPECT_FALSE(decodeProgram(mut).ok);
            ir::LiftResult lift = ir::liftImage(mut);
            EXPECT_FALSE(lift.ok)
                << "lifter accepted reserved source bits";
            EXPECT_FALSE(lift.error.empty());
        }
    }
}

TEST_P(LiftStructured, TruncatedArgListsAreRejected)
{
    SpannedImage s = generateSpanned(GetParam() * 409 + 1);
    for (auto [lo, hi] : s.spans) {
        for (size_t w = lo + 2; w < hi; ++w) {
            if (opOf(s.img[w]) != Op::Let)
                continue;
            LetWord let = unpackLet(s.img[w]);
            for (Word extra : { Word(1), Word(16), kMaxArgs }) {
                Word nargs = std::min(let.nargs + extra, kMaxArgs);
                if (nargs == let.nargs)
                    continue;
                Image mut = s.img;
                mut[w] = (mut[w] & ~(Word(0x3ff) << 16)) |
                         (nargs << 16);
                expectGateAgreement(mut);
            }
        }
    }
}

TEST_P(LiftStructured, RandomMutantsNeverLiftWhatDecodeRejects)
{
    SpannedImage s = generateSpanned(GetParam() * 131 + 5);
    Rng rng(GetParam() * 2654435761u + 11);
    for (int trial = 0; trial < 20; ++trial) {
        Image mut = s.img;
        int flips = 1 + int(rng.below(4));
        for (int f = 0; f < flips; ++f) {
            size_t at = rng.below(mut.size());
            mut[at] ^= Word(1) << rng.below(32);
        }
        expectGateAgreement(mut);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiftStructured,
                         ::testing::Range(uint64_t(0), uint64_t(25)));

TEST(LiftGates, TruncationSweep)
{
    Program p = assembleOrDie(testing::mapProgramText());
    Image img = encodeProgram(p);
    for (size_t n = 0; n <= img.size(); ++n) {
        Image cut(img.begin(), img.begin() + ptrdiff_t(n));
        expectGateAgreement(cut);
    }
    // The untruncated image lifts.
    EXPECT_TRUE(ir::liftImage(img).ok);
}

TEST(LiftGates, BadHeaderNamesItsGate)
{
    Image img = encodeProgram(assembleOrDie(testing::mapProgramText()));
    img[0] ^= 1; // break the magic
    ir::LiftResult lift = ir::liftImage(img);
    ASSERT_FALSE(lift.ok);
    EXPECT_EQ(lift.error.rfind("header: ", 0), 0u) << lift.error;
}

/** A callee id past every declaration: decoder-accepted, lifted as
 *  Unknown, and faulting at runtime in lockstep with the machine. */
TEST(LiftLeniency, OutOfBandCalleeIdLatchesLikeTheMachine)
{
    Program p;
    Let l{ calleeFunc(kFirstUserFuncId + 5), { opImm(1) }, nullptr };
    l.body = std::make_unique<Expr>(Result{ opLocal(0) });
    p.decls.push_back(
        Decl{ false, "main", 0, 1,
              std::make_unique<Expr>(std::move(l)) });
    Image img = encodeProgram(p);
    ASSERT_TRUE(decodeProgram(img).ok);

    ir::LiftResult lift = ir::liftImage(img);
    ASSERT_TRUE(lift.ok) << lift.error;
    const ir::Module &m = lift.module;
    ASSERT_TRUE(m.hasEntry);
    const ir::Op &op = m.ops[m.funcs[m.entry].body];
    ASSERT_EQ(op.kind, ir::OpKind::Let);
    EXPECT_EQ(op.callee.cls, ir::CalleeClass::Unknown);

    NullBus nb;
    MachineConfig mc;
    mc.semispaceWords = 1u << 13;
    Machine mach(img, nb, mc);
    Machine::Outcome mo = mach.run(100'000);
    ASSERT_EQ(mo.status, MachineStatus::Stuck) << mo.diagnostic;

    NullBus ib;
    ir::Outcome io = ir::evalModule(m, ib);
    EXPECT_EQ(io.status, ir::Outcome::Status::Stuck)
        << io.diagnostic;
    EXPECT_EQ(io.cycles, mach.cycles());
}

// ----------------------------------------------------------------
// Site-walk regression: the canonical walk vs. the legacy one
// ----------------------------------------------------------------

/** The recursive walk collectSymSites used before isa/sites.hh
 *  existed, reproduced verbatim as the regression baseline. */
void
legacyWalk(Expr &e, unsigned maxVars, std::vector<Operand *> &out)
{
    auto claim = [&](Operand &op) {
        if (op.src == Src::Imm && out.size() < maxVars)
            out.push_back(&op);
    };
    if (e.isLet()) {
        Let &l = e.asLet();
        for (Operand &a : l.args)
            claim(a);
        legacyWalk(*l.body, maxVars, out);
        return;
    }
    if (e.isCase()) {
        Case &c = e.asCase();
        claim(c.scrut);
        for (auto &br : c.branches)
            legacyWalk(*br.body, maxVars, out);
        legacyWalk(*c.elseBody, maxVars, out);
        return;
    }
    claim(e.asResult().value);
}

std::vector<Operand *>
legacySites(Program &p, unsigned maxVars)
{
    std::vector<Operand *> out;
    int entry = p.entryIndex();
    if (entry >= 0 && p.decls[size_t(entry)].body)
        legacyWalk(*p.decls[size_t(entry)].body, maxVars, out);
    return out;
}

TEST(SiteWalk, CanonicalWalkMatchesLegacyOrderEverywhere)
{
    size_t programsWithSites = 0;
    for (uint64_t seed = 0; seed < 200; ++seed) {
        fuzz::ProgramGenerator gen(seed * 17 + 3);
        BuildResult b = gen.generate().tryBuild();
        if (!b.ok)
            continue;
        Program &p = b.program;

        std::vector<Operand *> legacy = legacySites(p, 64);
        std::vector<Operand *> sites = sym::collectSymSites(p, 64);
        ASSERT_EQ(legacy, sites) << "seed " << seed;
        programsWithSites += !sites.empty();

        // And the lifter's value-level view is the same list.
        ir::LiftResult lift = ir::liftProgram(p);
        ASSERT_TRUE(lift.ok);
        ASSERT_EQ(lift.module.entryImmValues.size(), legacy.size());
        for (size_t i = 0; i < legacy.size(); ++i)
            EXPECT_EQ(lift.module.entryImmValues[i], legacy[i]->val)
                << "seed " << seed << " site " << i;
    }
    EXPECT_GT(programsWithSites, 50u);
}

TEST(SiteWalk, SharedWalkCoversEveryOperandPosition)
{
    // One handwritten program with an imm in every syntactic
    // position: let args, case scrutinee, branch bodies, else
    // body, result — the exact order contract of isa/sites.hh.
    Program p = assembleOrDie(R"(
con Box v

fun main =
  let b = Box 11
  case b of
    Box v =>
      let s = add v 22
      result s
  else
    result 33
)");
    std::vector<SWord> vals;
    forEachOperandSite(*p.decls[1].body, [&](const Operand &op) {
        if (op.src == Src::Imm)
            vals.push_back(op.val);
    });
    EXPECT_EQ(vals, (std::vector<SWord>{ 11, 22, 33 }));

    std::vector<Operand *> sites = sym::collectSymSites(p, 64);
    ASSERT_EQ(sites.size(), 3u);
    EXPECT_EQ(sites[0]->val, 11);
    EXPECT_EQ(sites[1]->val, 22);
    EXPECT_EQ(sites[2]->val, 33);
}

} // namespace
} // namespace zarf
