/**
 * @file
 * The conformance fuzzer testing itself (docs/TESTING.md):
 *
 *  - the checked-in seed corpus replays clean (no divergence) and
 *    every entry's file name matches its content hash;
 *  - a small guided campaign over all four evaluators finds no
 *    divergence and is bit-deterministic across worker-thread counts;
 *  - replay-by-hash is exact: text round-trip preserves the image
 *    and the hash, and replaying an image yields the same verdict
 *    every time;
 *  - mutation-kill: re-introducing the poisoned-operand defect the
 *    machine once shipped (machine/testhooks.hh) makes a bounded
 *    campaign find a divergence — proof the oracle has teeth;
 *  - the reducer shrinks a known diverging input with 14
 *    declarations to at most 10 (in fact one) deterministically.
 */

#include <gtest/gtest.h>

#include "fuzz/corpus.hh"
#include "fuzz/fuzzer.hh"
#include "fuzz/reduce.hh"
#include "isa/binary.hh"
#include "isa/encoding.hh"
#include "machine/testhooks.hh"

namespace zarf::fuzz
{
namespace
{

/** Scoped re-introduction of the PR-1 poisoned-operand defect. The
 *  flag is process-global; campaigns join their worker pool before
 *  returning, so scoping around a runFuzz/runOracle call is safe. */
struct DefectGuard
{
    DefectGuard() { testhooks::poisonedOperandDefect = true; }
    ~DefectGuard() { testhooks::poisonedOperandDefect = false; }
};

/** A diverging program under the seeded defect: main results an
 *  out-of-range local, which the poisoned machine silently reads as
 *  0 (Done) while the small-step reference correctly goes Stuck.
 *  Padded with `extra` trivial declarations for the reducer to eat. */
Image
poisonedImage(size_t extra)
{
    Program p;
    Decl main{ false, "main", 0, 0,
               std::make_unique<Expr>(Result{ opLocal(7) }) };
    p.decls.push_back(std::move(main));
    for (size_t i = 0; i < extra; ++i) {
        Decl d{ false, "pad" + std::to_string(i), 0, 0,
                std::make_unique<Expr>(Result{ opImm(SWord(i)) }) };
        p.decls.push_back(std::move(d));
    }
    return encodeProgram(p);
}

TEST(FuzzCorpus, SeedCorpusRepaysClean)
{
    CorpusLoad load = loadCorpusDir(ZARF_FUZZ_CORPUS_DIR);
    for (const auto &err : load.errors)
        ADD_FAILURE() << err;
    ASSERT_FALSE(load.entries.empty())
        << "seed corpus missing at " ZARF_FUZZ_CORPUS_DIR;

    FuzzConfig cfg;
    for (const CorpusEntry &e : load.entries) {
        EXPECT_EQ(imageHash(e.image), e.hash)
            << e.path << ": file name does not match content";
        OracleResult o = replayImage(e.image, cfg);
        EXPECT_NE(o.verdict, Verdict::Divergence)
            << e.path << ": " << o.detail;
    }
}

TEST(FuzzCorpus, TextRoundTripPreservesHash)
{
    Image img = poisonedImage(3);
    ParsedImage back = imageFromText(imageToText(img));
    ASSERT_TRUE(back.ok) << back.error;
    EXPECT_EQ(back.image, img);
    EXPECT_EQ(imageHash(back.image), imageHash(img));
    EXPECT_EQ(hashName(imageHash(img)).size(), 16u);
}

TEST(FuzzCampaign, GuidedCampaignIsClean)
{
    FuzzConfig cfg;
    cfg.seed = 7;
    cfg.rounds = 3;
    cfg.perRound = 32;
    cfg.threads = 2;
    FuzzResult res = runFuzz(cfg);
    EXPECT_TRUE(res.clean())
        << (res.findings.empty() ? std::string()
                                 : res.findings[0].detail);
    EXPECT_EQ(res.executed, cfg.rounds * cfg.perRound);
    EXPECT_GT(res.coverage.popcount(), 0u);
    EXPECT_FALSE(res.retained.empty());
}

TEST(FuzzCampaign, DeterministicAcrossThreadCounts)
{
    FuzzConfig a;
    a.seed = 11;
    a.rounds = 3;
    a.perRound = 24;
    a.threads = 1;
    FuzzConfig b = a;
    b.threads = 4;

    FuzzResult ra = runFuzz(a);
    FuzzResult rb = runFuzz(b);
    EXPECT_EQ(ra.summary(), rb.summary());
    ASSERT_EQ(ra.retained.size(), rb.retained.size());
    for (size_t i = 0; i < ra.retained.size(); ++i)
        EXPECT_EQ(imageHash(ra.retained[i]),
                  imageHash(rb.retained[i]))
            << "retained entry " << i << " differs";
    EXPECT_EQ(ra.coverage.summary(), rb.coverage.summary());
}

TEST(FuzzCampaign, ReplayIsExact)
{
    Image img = poisonedImage(0);
    FuzzConfig cfg;
    OracleResult first = replayImage(img, cfg);
    OracleResult again = replayImage(img, cfg);
    EXPECT_EQ(first.verdict, again.verdict);
    EXPECT_EQ(first.detail, again.detail);
    // Without the defect the out-of-range local is caught by every
    // engine: machine Stuck ⇔ small-step Stuck is agreement.
    EXPECT_EQ(first.verdict, Verdict::Agree) << first.detail;
}

TEST(FuzzMutationKill, SeededDefectIsFoundWithinBudget)
{
    DefectGuard defect;
    FuzzConfig cfg;
    cfg.seed = 1;
    cfg.rounds = 40;
    cfg.perRound = 48;
    cfg.maxDivergences = 1;
    FuzzResult res = runFuzz(cfg);
    ASSERT_FALSE(res.findings.empty())
        << "oracle failed to catch the seeded machine defect in "
        << res.executed << " executions";
    EXPECT_LE(res.executed, cfg.rounds * cfg.perRound);
    EXPECT_NE(res.findings[0].detail.find("machine-vs-smallstep"),
              std::string::npos)
        << res.findings[0].detail;
    EXPECT_EQ(res.findings[0].hash, imageHash(res.findings[0].image));
}

TEST(FuzzReducer, ShrinksSeededDivergenceToOneDecl)
{
    DefectGuard defect;
    Image big = poisonedImage(13); // 14 declarations
    {
        DecodeResult d = decodeProgram(big);
        ASSERT_TRUE(d.ok);
        ASSERT_EQ(d.program.decls.size(), 14u);
    }
    ASSERT_EQ(runOracle(big).verdict, Verdict::Divergence);

    ReduceResult rr = reduceDivergence(big);
    EXPECT_TRUE(rr.diverged);
    EXPECT_LT(rr.image.size(), big.size());
    DecodeResult reduced = decodeProgram(rr.image);
    ASSERT_TRUE(reduced.ok);
    EXPECT_LE(reduced.program.decls.size(), 10u);
    EXPECT_EQ(runOracle(rr.image).verdict, Verdict::Divergence);

    // Deterministic: the same input reduces to the same image.
    ReduceResult rr2 = reduceDivergence(big);
    EXPECT_EQ(rr.image, rr2.image);
    EXPECT_EQ(rr.evals, rr2.evals);
}

TEST(FuzzReducer, NonDivergingInputIsReturnedUnchanged)
{
    Image img = poisonedImage(2); // defect off: everyone agrees
    ReduceResult rr = reduceDivergence(img);
    EXPECT_FALSE(rr.diverged);
    EXPECT_EQ(rr.image, img);
    EXPECT_EQ(rr.evals, 1u);
}

} // namespace
} // namespace zarf::fuzz
