/**
 * @file
 * Harness-resilience substrate tests (docs/RESILIENCE.md, "Harness
 * resilience"): the cooperative Budget token and its machine-level
 * enforcement (tier-invariant λ-cycle trips, heap trips, cancellation
 * at awkward points with snapshot-restorable state), the crash-safe
 * verdict journal's torn-tail contract, the capped-exponential retry
 * policy, task supervision, and the quarantine store.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/testprogs.hh"
#include "fuzz/genprog.hh"
#include "machine/machine.hh"
#include "verify/budget.hh"
#include "verify/journal.hh"
#include "verify/quarantine.hh"
#include "verify/supervise.hh"
#include "zasm/zasm.hh"

namespace zarf::verify
{
namespace
{

namespace fs = std::filesystem;

/** Fresh per-test scratch directory under the gtest temp root. */
fs::path
scratchDir(const char *name)
{
    fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

// ----------------------------------------------------------------
// Budget token unit semantics.
// ----------------------------------------------------------------

TEST(Budget, DefaultSpecIsUnlimited)
{
    BudgetSpec spec;
    EXPECT_FALSE(spec.any());
    spec.maxLambdaCycles = 1;
    EXPECT_TRUE(spec.any());
    spec = {};
    spec.maxHostMillis = 1;
    EXPECT_TRUE(spec.any());
    spec = {};
    spec.maxHeapBytes = 1;
    EXPECT_TRUE(spec.any());

    Budget b;
    EXPECT_EQ(b.check(~Cycles(0), ~uint64_t(0)), BudgetTrip::None);
    EXPECT_EQ(b.tripped(), BudgetTrip::None);
}

TEST(Budget, CycleLimitLatchesOnce)
{
    BudgetSpec spec;
    spec.maxLambdaCycles = 100;
    Budget b(spec);
    EXPECT_EQ(b.check(99, 0), BudgetTrip::None);
    EXPECT_EQ(b.check(100, 0), BudgetTrip::Cycles);
    // Latched: even a check that is back within limits reports the
    // original trip — a Budget trips at most once, forever.
    EXPECT_EQ(b.check(0, 0), BudgetTrip::Cycles);
    EXPECT_EQ(b.tripped(), BudgetTrip::Cycles);
}

TEST(Budget, HeapLimitIsStrictlyAbove)
{
    BudgetSpec spec;
    spec.maxHeapBytes = 4096;
    Budget b(spec);
    EXPECT_EQ(b.check(0, 4096), BudgetTrip::None);
    EXPECT_EQ(b.check(0, 4097), BudgetTrip::Heap);
    EXPECT_EQ(b.tripped(), BudgetTrip::Heap);
}

TEST(Budget, DeterministicCausesWinOverTransientOnes)
{
    // A run that blows the λ-cycle limit *and* has a pending cancel
    // must report the reproducible cause, so retries classify it as
    // wedging instead of transient.
    BudgetSpec spec;
    spec.maxLambdaCycles = 10;
    spec.maxHostMillis = 1;
    Budget b(spec);
    b.cancel();
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    EXPECT_EQ(b.check(10, 0), BudgetTrip::Cycles);
}

TEST(Budget, CancelAndHostTimeAreTransient)
{
    {
        Budget b;
        b.cancel();
        EXPECT_TRUE(b.cancelRequested());
        EXPECT_EQ(b.check(0, 0), BudgetTrip::Cancelled);
    }
    {
        BudgetSpec spec;
        spec.maxHostMillis = 1;
        Budget b(spec);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        EXPECT_EQ(b.check(0, 0), BudgetTrip::HostTime);
    }
    EXPECT_FALSE(budgetTripTransient(BudgetTrip::None));
    EXPECT_FALSE(budgetTripTransient(BudgetTrip::Cycles));
    EXPECT_FALSE(budgetTripTransient(BudgetTrip::Heap));
    EXPECT_TRUE(budgetTripTransient(BudgetTrip::HostTime));
    EXPECT_TRUE(budgetTripTransient(BudgetTrip::Cancelled));
}

TEST(Budget, TripNamesAreStable)
{
    EXPECT_STREQ(budgetTripName(BudgetTrip::None), "none");
    EXPECT_STREQ(budgetTripName(BudgetTrip::Cycles),
                 "lambda-cycles");
    EXPECT_STREQ(budgetTripName(BudgetTrip::Heap), "heap-bytes");
    EXPECT_STREQ(budgetTripName(BudgetTrip::HostTime), "host-time");
    EXPECT_STREQ(budgetTripName(BudgetTrip::Cancelled), "cancelled");
}

// ----------------------------------------------------------------
// Machine-level enforcement.
// ----------------------------------------------------------------

Image
budgetTestImage(uint64_t seed)
{
    fuzz::GenConfig gcfg;
    gcfg.numCons = 4;
    gcfg.numFuncs = 7;
    gcfg.maxDepth = 5;
    fuzz::ProgramGenerator gen(seed * 2654435761u + 7, gcfg);
    BuildResult b = gen.generate().tryBuild();
    EXPECT_TRUE(b.ok) << b.error;
    return encodeProgram(b.program);
}

MachineConfig
tierConfig(DispatchTier tier, Budget *budget,
           size_t semispaceWords = 1u << 20)
{
    MachineConfig cfg;
    cfg.tier = tier;
    cfg.budget = budget;
    cfg.semispaceWords = semispaceWords;
    return cfg;
}

constexpr DispatchTier kCycleAccurate[] = {
    DispatchTier::WordWalk,
    DispatchTier::Uop,
    DispatchTier::Threaded,
};

/** The canonical long-running programs (tests/common/testprogs.hh).
 *  Generated corpus programs are terminating-by-construction and
 *  finish within a few hundred cycles, so every test that needs a
 *  trip to land genuinely mid-run anchors on these: the 100k-step
 *  countdown loop (~4.6M cycles, heavy garbage churn under a tiny
 *  semispace) and the Church-numeral tower (~16k cycles). */
Image
countdownImage()
{
    return encodeProgram(
        assembleOrDie(testing::countdownProgramText()));
}

Image
churchImage()
{
    return encodeProgram(
        assembleOrDie(testing::churchProgramText()));
}

TEST(MachineBudget, CycleTripIsTierInvariant)
{
    // The canonical programs always qualify; the generated ones add
    // ISA breadth whenever the generator happens to emit a long run.
    std::vector<Image> images = { countdownImage(), churchImage() };
    for (uint64_t seed = 0; seed < 6; ++seed)
        images.push_back(budgetTestImage(seed));
    unsigned exercised = 0;
    for (const Image &img : images) {
        NullBus bus;
        Machine ref(img, bus, tierConfig(DispatchTier::Uop, nullptr));
        Machine::Outcome o = ref.run();
        if (o.status != MachineStatus::Done || ref.cycles() < 2000)
            continue; // trivial program; next image
        ++exercised;
        Cycles limit = ref.cycles() / 2;

        BudgetSpec spec;
        spec.maxLambdaCycles = limit;
        Cycles tripCycle = 0;
        for (DispatchTier tier : kCycleAccurate) {
            Budget bud(spec);
            NullBus tbus;
            Machine m(img, tbus, tierConfig(tier, &bud));
            Machine::Outcome to = m.run();
            EXPECT_EQ(to.status, MachineStatus::BudgetExceeded)
                << dispatchTierName(tier);
            EXPECT_EQ(bud.tripped(), BudgetTrip::Cycles);
            EXPECT_GE(m.cycles(), limit);
            // All cycle-accurate tiers stop on the same step
            // boundary — the same cycle, the same statistics.
            if (tripCycle == 0)
                tripCycle = m.cycles();
            EXPECT_EQ(m.cycles(), tripCycle)
                << dispatchTierName(tier);
            // Stats stay coherent at the abort point: the machine
            // clock is exactly load + execution.
            EXPECT_EQ(m.stats().loadCycles + m.stats().execCycles,
                      m.cycles())
                << dispatchTierName(tier);
            EXPECT_NE(m.diagnostic().find("lambda-cycles"),
                      std::string::npos);
        }

        // The fast-functional tier has its own (fused-step) clock;
        // halve *its* total so the trip lands mid-run there too.
        Budget ffProbeBud; // unlimited, just to exercise the path
        NullBus ffbus;
        Machine ffRef(img, ffbus,
                      tierConfig(DispatchTier::FastFunctional,
                                 &ffProbeBud));
        ffRef.run();
        BudgetSpec ffSpec;
        ffSpec.maxLambdaCycles = ffRef.cycles() / 2;
        if (ffSpec.maxLambdaCycles == 0)
            continue;
        Budget ffBud(ffSpec);
        NullBus ffbus2;
        Machine ff(img, ffbus2,
                   tierConfig(DispatchTier::FastFunctional, &ffBud));
        Machine::Outcome ffo = ff.run();
        EXPECT_EQ(ffo.status, MachineStatus::BudgetExceeded);
        EXPECT_EQ(ffBud.tripped(), BudgetTrip::Cycles);
        EXPECT_GE(ff.cycles(), ffSpec.maxLambdaCycles);
    }
    // Guard against vacuity: the countdown loop and the Church
    // tower both run far past the qualifying threshold.
    EXPECT_GE(exercised, 2u);
}

TEST(MachineBudget, GenerousBudgetIsInvisible)
{
    Image img = budgetTestImage(3);
    NullBus busA;
    Machine plain(img, busA, tierConfig(DispatchTier::Uop, nullptr));
    Machine::Outcome oPlain = plain.run();

    BudgetSpec spec;
    spec.maxLambdaCycles = plain.cycles() * 4 + 1000;
    spec.maxHeapBytes = 1u << 30;
    Budget bud(spec);
    NullBus busB;
    Machine budgeted(img, busB, tierConfig(DispatchTier::Uop, &bud));
    Machine::Outcome oBud = budgeted.run();

    ASSERT_EQ(oBud.status, oPlain.status);
    EXPECT_EQ(budgeted.cycles(), plain.cycles());
    EXPECT_EQ(bud.tripped(), BudgetTrip::None);
    EXPECT_EQ(budgeted.stats().allocations,
              plain.stats().allocations);
    if (oPlain.status == MachineStatus::Done) {
        ASSERT_TRUE(oPlain.value && oBud.value);
        EXPECT_TRUE(Value::equal(*oPlain.value, *oBud.value));
    }
}

TEST(MachineBudget, HeapTripUnderGcPressure)
{
    // The countdown loop churns garbage through a 12k-word
    // semispace (dozens of collections, 9-word live set); a heap
    // ceiling far below the between-collection high-water mark MUST
    // trip at a chunk boundary — and at the identical cycle across
    // the cycle-accurate tiers, since the usage the check observes
    // is part of the deterministic machine state.
    {
        Image img = countdownImage();
        BudgetSpec spec;
        spec.maxHeapBytes = 16 * 1024;
        Cycles tripCycle = 0;
        for (DispatchTier tier : kCycleAccurate) {
            Budget bud(spec);
            NullBus bus;
            Machine m(img, bus, tierConfig(tier, &bud, 3 * 4096));
            m.run();
            EXPECT_EQ(m.status(), MachineStatus::BudgetExceeded)
                << dispatchTierName(tier);
            EXPECT_EQ(bud.tripped(), BudgetTrip::Heap);
            if (tripCycle == 0)
                tripCycle = m.cycles();
            EXPECT_EQ(m.cycles(), tripCycle)
                << dispatchTierName(tier);
            EXPECT_NE(m.diagnostic().find("heap-bytes"),
                      std::string::npos);
        }
    }

    // Generated-program breadth: a ceiling below the observed live
    // peak may or may not be seen at a check boundary (short runs
    // check rarely), but when it does trip it must trip identically.
    for (uint64_t seed = 0; seed < 8; ++seed) {
        Image img = budgetTestImage(seed);
        NullBus refBus;
        Machine ref(img, refBus,
                    tierConfig(DispatchTier::Uop, nullptr, 3 * 4096));
        ref.run();
        size_t peakBytes = ref.stats().gcMaxLiveWords * sizeof(Word);
        if (ref.status() != MachineStatus::Done ||
            ref.stats().gcRuns == 0 || peakBytes < 512)
            continue;

        BudgetSpec spec;
        spec.maxHeapBytes = peakBytes / 2;
        Cycles tripCycle = 0;
        for (DispatchTier tier : kCycleAccurate) {
            Budget bud(spec);
            NullBus bus;
            Machine m(img, bus, tierConfig(tier, &bud, 3 * 4096));
            m.run();
            if (bud.tripped() == BudgetTrip::None)
                continue; // heap high-water between checks; fine
            EXPECT_EQ(m.status(), MachineStatus::BudgetExceeded);
            EXPECT_EQ(bud.tripped(), BudgetTrip::Heap);
            if (tripCycle == 0)
                tripCycle = m.cycles();
            EXPECT_EQ(m.cycles(), tripCycle)
                << dispatchTierName(tier);
        }
    }
}

TEST(MachineBudget, CancelledMachineIsSnapshotRestorable)
{
    // Satellite (c): a budget abort mid-run — with GC pressure, so
    // the trip lands in an interesting heap era — leaves consistent,
    // snapshottable state that a fork adopts exactly.
    Image img = countdownImage();
    NullBus refBus;
    Machine ref(img, refBus,
                tierConfig(DispatchTier::Uop, nullptr, 3 * 4096));
    ref.run();
    ASSERT_GE(ref.cycles(), 2000u);

    BudgetSpec spec;
    spec.maxLambdaCycles = ref.cycles() / 2;
    Budget bud(spec);
    NullBus bus;
    Machine m(img, bus, tierConfig(DispatchTier::Uop, &bud, 3 * 4096));
    ASSERT_EQ(m.run().status, MachineStatus::BudgetExceeded);

    std::shared_ptr<const MachineSnapshot> snap = m.snapshot();
    NullBus forkBus;
    Machine fork(img, forkBus,
                 tierConfig(DispatchTier::Uop, nullptr, 3 * 4096));
    fork.restore(*snap);
    EXPECT_EQ(fork.status(), MachineStatus::BudgetExceeded);
    EXPECT_EQ(fork.cycles(), m.cycles());
    EXPECT_EQ(fork.stats().allocations, m.stats().allocations);
    EXPECT_EQ(fork.stats().gcRuns, m.stats().gcRuns);
    EXPECT_EQ(fork.heapUsedWords(), m.heapUsedWords());
}

TEST(MachineBudget, CancelBeforeRestoredRunAbortsWithoutProgress)
{
    // Satellite (c), the snapshot-restore window: a cancel raised
    // before a restored machine resumes must abort it at the very
    // first SYNC point, with the adopted state untouched.
    Image img = churchImage();
    NullBus srcBus;
    Machine source(img, srcBus,
                   tierConfig(DispatchTier::Uop, nullptr));
    NullBus probeBus;
    Machine probe(img, probeBus,
                  tierConfig(DispatchTier::Uop, nullptr));
    probe.run();
    ASSERT_GE(probe.cycles(), 1000u);
    source.advance(probe.cycles() / 2);
    ASSERT_EQ(source.status(), MachineStatus::Running);
    std::shared_ptr<const MachineSnapshot> snap = source.snapshot();

    Budget bud;
    bud.cancel();
    NullBus forkBus;
    Machine fork(img, forkBus, tierConfig(DispatchTier::Uop, &bud));
    fork.restore(*snap);
    EXPECT_EQ(fork.advance(1'000'000'000ull),
              MachineStatus::BudgetExceeded);
    EXPECT_EQ(bud.tripped(), BudgetTrip::Cancelled);
    // No simulated progress past the snapshot point.
    EXPECT_EQ(fork.cycles(), source.cycles());
}

TEST(MachineBudget, CancelInThreadedBatchedWindowStopsAtSyncPoint)
{
    // Satellite (c), the threaded tier's batched cycle-charge
    // window: a pre-raised cancel aborts before the first chunk, so
    // the machine clock never moves past the construction-time
    // load+boot point and the verdict matches every other tier's.
    Image img = budgetTestImage(9);
    for (DispatchTier tier :
         { DispatchTier::Uop, DispatchTier::Threaded }) {
        Budget bud;
        bud.cancel();
        NullBus bus;
        Machine m(img, bus, tierConfig(tier, &bud));
        Cycles atBirth = m.cycles();
        EXPECT_EQ(m.advance(1'000'000'000ull),
                  MachineStatus::BudgetExceeded)
            << dispatchTierName(tier);
        EXPECT_EQ(bud.tripped(), BudgetTrip::Cancelled);
        EXPECT_EQ(m.cycles(), atBirth) << dispatchTierName(tier);
        EXPECT_NE(m.diagnostic().find("cancelled"),
                  std::string::npos);
    }
}

// ----------------------------------------------------------------
// The crash-safe journal.
// ----------------------------------------------------------------

std::string
readFileBytes(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(Journal, RoundTripPreservesRecordsInOrder)
{
    fs::path dir = scratchDir("journal-roundtrip");
    std::string path = (dir / "j.bin").string();

    std::vector<std::string> records = {
        "fingerprint", std::string("\0\x01\x02", 3), "", "verdict-3"
    };
    {
        JournalWriter w(path, JournalWriter::Mode::Truncate);
        ASSERT_TRUE(w.ok());
        for (const std::string &r : records)
            ASSERT_TRUE(w.append(r));
    }
    JournalRead rd = readJournal(path);
    ASSERT_TRUE(rd.ok) << rd.error;
    EXPECT_FALSE(rd.truncatedTail);
    ASSERT_EQ(rd.records.size(), records.size());
    for (size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(rd.records[i], records[i]) << i;
    EXPECT_EQ(rd.intactBytes, fs::file_size(path));
}

TEST(Journal, MissingFileIsNotOk)
{
    fs::path dir = scratchDir("journal-missing");
    JournalRead rd = readJournal((dir / "absent.bin").string());
    EXPECT_FALSE(rd.ok);
    EXPECT_TRUE(rd.records.empty());
}

TEST(Journal, TornTailIsDroppedAndOverwrittenOnResume)
{
    fs::path dir = scratchDir("journal-torn");
    std::string path = (dir / "j.bin").string();
    {
        JournalWriter w(path, JournalWriter::Mode::Truncate);
        ASSERT_TRUE(w.append("alpha"));
        ASSERT_TRUE(w.append("beta"));
    }
    uint64_t goodBytes = fs::file_size(path);

    // Simulate a kill mid-append: a frame header with no payload.
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out.write("\x40\x00\x00\x00\x99", 5);
    }
    JournalRead rd = readJournal(path);
    ASSERT_TRUE(rd.ok);
    EXPECT_TRUE(rd.truncatedTail);
    ASSERT_EQ(rd.records.size(), 2u);
    EXPECT_EQ(rd.records[0], "alpha");
    EXPECT_EQ(rd.records[1], "beta");
    EXPECT_EQ(rd.intactBytes, goodBytes);

    // Resume positions after the last good record; the torn bytes
    // are gone and the next append lands where they were.
    {
        JournalWriter w(path, JournalWriter::Mode::Resume,
                        rd.intactBytes);
        ASSERT_TRUE(w.ok());
        ASSERT_TRUE(w.append("gamma"));
    }
    JournalRead rd2 = readJournal(path);
    ASSERT_TRUE(rd2.ok);
    EXPECT_FALSE(rd2.truncatedTail);
    ASSERT_EQ(rd2.records.size(), 3u);
    EXPECT_EQ(rd2.records[2], "gamma");
}

TEST(Journal, ChecksumFailureTruncatesAtTheCorruptRecord)
{
    fs::path dir = scratchDir("journal-corrupt");
    std::string path = (dir / "j.bin").string();
    {
        JournalWriter w(path, JournalWriter::Mode::Truncate);
        ASSERT_TRUE(w.append("alpha"));
        ASSERT_TRUE(w.append("beta-which-gets-corrupted"));
    }
    // Flip one payload byte of the last record.
    std::string bytes = readFileBytes(path);
    bytes[bytes.size() - 3] ^= 0x20;
    {
        std::ofstream out(path,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), std::streamsize(bytes.size()));
    }
    JournalRead rd = readJournal(path);
    ASSERT_TRUE(rd.ok);
    EXPECT_TRUE(rd.truncatedTail);
    ASSERT_EQ(rd.records.size(), 1u);
    EXPECT_EQ(rd.records[0], "alpha");
}

TEST(Journal, U64CodecRoundTripsAndRejectsShortBuffers)
{
    std::string buf;
    journalPutU64(buf, 0);
    journalPutU64(buf, 0x0123456789abcdefull);
    journalPutU64(buf, ~uint64_t(0));
    ASSERT_EQ(buf.size(), 24u);
    size_t off = 0;
    uint64_t v = 1;
    ASSERT_TRUE(journalGetU64(buf, off, v));
    EXPECT_EQ(v, 0u);
    ASSERT_TRUE(journalGetU64(buf, off, v));
    EXPECT_EQ(v, 0x0123456789abcdefull);
    ASSERT_TRUE(journalGetU64(buf, off, v));
    EXPECT_EQ(v, ~uint64_t(0));
    EXPECT_FALSE(journalGetU64(buf, off, v));
    // Little-endian on every host: byte 0 of the second field.
    EXPECT_EQ(uint8_t(buf[8]), 0xef);
}

// ----------------------------------------------------------------
// Retry policy and supervision.
// ----------------------------------------------------------------

TEST(RetryPolicy, BackoffDoublesAndSaturatesAtTheCap)
{
    RetryPolicy p;
    p.backoffBaseMs = 10;
    p.backoffCapMs = 2000;
    EXPECT_EQ(p.delayBeforeAttemptMs(1), 0u);
    EXPECT_EQ(p.delayBeforeAttemptMs(2), 10u);
    EXPECT_EQ(p.delayBeforeAttemptMs(3), 20u);
    EXPECT_EQ(p.delayBeforeAttemptMs(4), 40u);
    EXPECT_EQ(p.delayBeforeAttemptMs(9), 1280u);
    EXPECT_EQ(p.delayBeforeAttemptMs(10), 2000u);
    // Far past the doubling range: saturates, never wraps.
    EXPECT_EQ(p.delayBeforeAttemptMs(64), 2000u);
    EXPECT_EQ(p.delayBeforeAttemptMs(100), 2000u);
    EXPECT_EQ(p.delayBeforeAttemptMs(~0u), 2000u);

    RetryPolicy quiet;
    quiet.backoffBaseMs = 0;
    EXPECT_EQ(quiet.delayBeforeAttemptMs(50), 0u);
}

RetryPolicy
fastRetry(unsigned maxAttempts)
{
    RetryPolicy p;
    p.maxAttempts = maxAttempts;
    p.backoffBaseMs = 0; // no sleeping in tests
    return p;
}

TEST(Supervise, CleanTaskRunsOnce)
{
    unsigned calls = 0;
    SupervisedRun sr = superviseTask(
        BudgetSpec{}, fastRetry(3),
        [&](Budget &, unsigned) { ++calls; });
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(sr.attempts, 1u);
    EXPECT_EQ(sr.trip, BudgetTrip::None);
    EXPECT_FALSE(sr.wedged);
    EXPECT_EQ(sr.retries(), 0u);
}

TEST(Supervise, TransientTripRetriesWithAFreshBudget)
{
    unsigned calls = 0;
    SupervisedRun sr = superviseTask(
        BudgetSpec{}, fastRetry(3),
        [&](Budget &b, unsigned attempt) {
            ++calls;
            EXPECT_EQ(attempt, calls);
            // The budget must arrive untripped every attempt.
            EXPECT_EQ(b.tripped(), BudgetTrip::None);
            if (attempt == 1) {
                b.cancel();
                b.check(0, 0); // the task observes the cancel
            }
        });
    EXPECT_EQ(calls, 2u);
    EXPECT_EQ(sr.attempts, 2u);
    EXPECT_EQ(sr.trip, BudgetTrip::None);
    EXPECT_FALSE(sr.wedged);
    EXPECT_EQ(sr.retries(), 1u);
}

TEST(Supervise, DeterministicTripWedgesWithoutRetry)
{
    BudgetSpec spec;
    spec.maxLambdaCycles = 10;
    unsigned calls = 0;
    SupervisedRun sr = superviseTask(
        spec, fastRetry(5), [&](Budget &b, unsigned) {
            ++calls;
            b.check(10, 0);
        });
    EXPECT_EQ(calls, 1u); // same input, same trip: no retry
    EXPECT_EQ(sr.attempts, 1u);
    EXPECT_EQ(sr.trip, BudgetTrip::Cycles);
    EXPECT_TRUE(sr.wedged);
}

TEST(Supervise, ExhaustedRetriesWedge)
{
    unsigned calls = 0;
    SupervisedRun sr = superviseTask(
        BudgetSpec{}, fastRetry(3), [&](Budget &b, unsigned) {
            ++calls;
            b.cancel();
            b.check(0, 0);
        });
    EXPECT_EQ(calls, 3u);
    EXPECT_EQ(sr.attempts, 3u);
    EXPECT_EQ(sr.trip, BudgetTrip::Cancelled);
    EXPECT_TRUE(sr.wedged);
    EXPECT_EQ(sr.retries(), 2u);
}

TEST(Supervise, MonitorCancelsAPastDeadlineTask)
{
    // A task wedged between SYNC points: the process-wide monitor
    // raises its cancel flag once the host deadline passes, and the
    // task notices at its next check. Generous timeouts — this is a
    // liveness test, not a latency test.
    BudgetSpec spec;
    spec.maxHostMillis = 40;
    Budget bud(spec);
    {
        Supervisor::Watch watch(bud, spec.maxHostMillis);
        bool noticed = false;
        for (int i = 0; i < 1000 && !noticed; ++i) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
            // A wedged task makes no simulated progress; only the
            // host-side machinery can reel it in.
            BudgetTrip t = bud.check(0, 0);
            noticed = t != BudgetTrip::None;
        }
        EXPECT_TRUE(noticed);
        EXPECT_TRUE(budgetTripTransient(bud.tripped()));
    }
    EXPECT_GE(Supervisor::instance().cancellations(), 0u);
}

// ----------------------------------------------------------------
// The quarantine store.
// ----------------------------------------------------------------

TEST(Quarantine, StoresContentAddressedWithVerdictSidecar)
{
    fs::path dir = scratchDir("quarantine-store");
    std::string payload = "wedging input bytes";
    std::string verdict = "trip lambda-cycles\nattempts 1\n";

    QuarantineEntry e = quarantineStore(dir.string(), payload,
                                        ".scenario", verdict);
    ASSERT_TRUE(e.ok);
    EXPECT_EQ(fs::path(e.inputPath).filename().string(),
              quarantineName(payload) + ".scenario");
    EXPECT_EQ(readFileBytes(e.inputPath), payload);
    EXPECT_EQ(readFileBytes(e.verdictPath), verdict);

    // Content-addressing deduplicates: same payload, same paths.
    QuarantineEntry e2 = quarantineStore(dir.string(), payload,
                                         ".scenario", verdict);
    ASSERT_TRUE(e2.ok);
    EXPECT_EQ(e2.inputPath, e.inputPath);

    EXPECT_EQ(quarantineName(payload).size(), 16u);
    EXPECT_EQ(quarantineHash(payload), quarantineHash(payload));
    EXPECT_NE(quarantineHash(payload), quarantineHash("other"));
}

TEST(Quarantine, UnwritableDirectoryWarnsAndNeverAborts)
{
    fs::path dir = scratchDir("quarantine-unwritable");
    fs::path blocker = dir / "file.txt";
    std::ofstream(blocker) << "a regular file, not a directory\n";

    QuarantineEntry e = quarantineStore(
        (blocker / "sub").string(), "payload", ".zimg", "verdict\n");
    EXPECT_FALSE(e.ok);
    EXPECT_TRUE(e.inputPath.empty());
}

} // namespace
} // namespace zarf::verify
