/**
 * @file
 * Validator tests: each malformed-program shape must be caught.
 */

#include <gtest/gtest.h>

#include "isa/validate.hh"

namespace zarf
{
namespace
{

ExprPtr
ret(Operand v)
{
    return std::make_unique<Expr>(Result{ v });
}

Decl
mainWith(ExprPtr body, Word locals)
{
    Decl d;
    d.isCons = false;
    d.name = "main";
    d.arity = 0;
    d.numLocals = locals;
    d.body = std::move(body);
    return d;
}

TEST(Validate, AcceptsMinimalProgram)
{
    Program p;
    p.decls.push_back(mainWith(ret(opImm(1)), 0));
    EXPECT_TRUE(validateProgram(p).ok());
}

TEST(Validate, RejectsEmptyProgram)
{
    Program p;
    EXPECT_FALSE(validateProgram(p).ok());
}

TEST(Validate, RejectsUnboundLocal)
{
    Program p;
    p.decls.push_back(mainWith(ret(opLocal(0)), 1));
    ValidationReport r = validateProgram(p);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("local"), std::string::npos);
}

TEST(Validate, RejectsArgOutOfRange)
{
    Program p;
    p.decls.push_back(mainWith(ret(opImm(0)), 0));
    Decl f;
    f.isCons = false;
    f.name = "f";
    f.arity = 1;
    f.numLocals = 0;
    f.body = ret(opArg(1)); // only arg 0 exists
    p.decls.push_back(std::move(f));
    EXPECT_FALSE(validateProgram(p).ok());
}

TEST(Validate, RejectsUnknownCallee)
{
    Program p;
    Let l;
    l.callee = calleeFunc(0x999); // no such declaration
    l.body = ret(opLocal(0));
    p.decls.push_back(
        mainWith(std::make_unique<Expr>(std::move(l)), 1));
    EXPECT_FALSE(validateProgram(p).ok());
}

TEST(Validate, RejectsUnknownPrimCallee)
{
    Program p;
    Let l;
    l.callee = calleeFunc(0xfe); // reserved but undefined prim slot
    l.body = ret(opLocal(0));
    p.decls.push_back(
        mainWith(std::make_unique<Expr>(std::move(l)), 1));
    EXPECT_FALSE(validateProgram(p).ok());
}

TEST(Validate, RejectsUnderdeclaredLocals)
{
    Program p;
    Let l;
    l.callee = calleeFunc(static_cast<Word>(Prim::Add));
    l.args = { opImm(1), opImm(2) };
    l.body = ret(opLocal(0));
    // Fingerprint claims 0 locals, body binds 1.
    p.decls.push_back(
        mainWith(std::make_unique<Expr>(std::move(l)), 0));
    ValidationReport r = validateProgram(p);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.summary().find("locals"), std::string::npos);
}

TEST(Validate, RejectsNonConstructorPattern)
{
    Program p;
    p.decls.push_back(mainWith(ret(opImm(0)), 0));
    Decl f;
    f.isCons = false;
    f.name = "f";
    f.arity = 1;
    f.numLocals = 0;
    Case c;
    c.scrut = opArg(0);
    CaseBranch br;
    br.isCons = true;
    br.consId = Program::idOf(1); // f itself: a function, not a cons
    br.body = ret(opImm(1));
    c.branches.push_back(std::move(br));
    c.elseBody = ret(opImm(2));
    f.body = std::make_unique<Expr>(std::move(c));
    p.decls.push_back(std::move(f));
    EXPECT_FALSE(validateProgram(p).ok());
}

TEST(Validate, RejectsLiteralPatternOutOfRange)
{
    Program p;
    Case c;
    c.scrut = opImm(0);
    c.branches.push_back(CaseBranch{ false, 1 << 20, 0,
                                     ret(opImm(1)) });
    c.elseBody = ret(opImm(2));
    p.decls.push_back(
        mainWith(std::make_unique<Expr>(std::move(c)), 0));
    EXPECT_FALSE(validateProgram(p).ok());
}

TEST(Validate, ConstructorPatternBindsFieldsForBody)
{
    // Valid: fields bound by the pattern are referencable locals.
    Program p;
    Decl box;
    box.isCons = true;
    box.name = "Box";
    box.arity = 2;
    box.numLocals = 0;

    Let mk;
    mk.callee = calleeFunc(Program::idOf(1));
    mk.args = { opImm(4), opImm(5) };
    Case c;
    c.scrut = opLocal(0);
    c.branches.push_back(
        CaseBranch{ true, 0, Program::idOf(1), ret(opLocal(2)) });
    c.elseBody = ret(opImm(0));
    mk.body = std::make_unique<Expr>(std::move(c));

    p.decls.push_back(
        mainWith(std::make_unique<Expr>(std::move(mk)), 3));
    p.decls.push_back(std::move(box));
    EXPECT_TRUE(validateProgram(p).ok())
        << validateProgram(p).summary();
}

TEST(Validate, ErrorPatternIsAConstructor)
{
    // The reserved Error prim may be used in cons patterns.
    Program p;
    Case c;
    c.scrut = opImm(0);
    c.branches.push_back(CaseBranch{
        true, 0, static_cast<Word>(Prim::Error), ret(opLocal(0)) });
    c.elseBody = ret(opImm(2));
    p.decls.push_back(
        mainWith(std::make_unique<Expr>(std::move(c)), 1));
    EXPECT_TRUE(validateProgram(p).ok())
        << validateProgram(p).summary();
}

} // namespace
} // namespace zarf
