/**
 * @file
 * Heap and collector unit tests: tagged-word helpers, header
 * packing, allocation, indirection chasing, and Cheney collection
 * of object graphs with sharing and indirection chains.
 */

#include <gtest/gtest.h>

#include "machine/heap.hh"

namespace zarf
{
namespace
{

TEST(MVal, TaggedWords)
{
    EXPECT_TRUE(mval::isInt(mval::mkInt(5)));
    EXPECT_TRUE(mval::isInt(mval::mkInt(-5)));
    EXPECT_TRUE(mval::isRef(mval::mkRef(123)));
    EXPECT_EQ(mval::intOf(mval::mkInt(5)), 5);
    EXPECT_EQ(mval::intOf(mval::mkInt(-5)), -5);
    EXPECT_EQ(mval::intOf(mval::mkInt(kIntMin)), kIntMin);
    EXPECT_EQ(mval::intOf(mval::mkInt(kIntMax)), kIntMax);
    EXPECT_EQ(mval::refOf(mval::mkRef(123)), 123u);
}

TEST(MHdr, HeaderFields)
{
    Word h = mhdr::pack(ObjKind::Cons, 3, 0x104);
    EXPECT_EQ(mhdr::kindOf(h), ObjKind::Cons);
    EXPECT_EQ(mhdr::countOf(h), 3u);
    EXPECT_EQ(mhdr::fnOf(h), 0x104u);
    EXPECT_FALSE(mhdr::padOf(h));
    EXPECT_EQ(mhdr::argsOf(h), 3u);

    Word p = mhdr::pack(ObjKind::App, 1, 0x100, true);
    EXPECT_TRUE(mhdr::padOf(p));
    EXPECT_EQ(mhdr::countOf(p), 1u);
    EXPECT_EQ(mhdr::argsOf(p), 0u);
}

struct HeapFixture : ::testing::Test
{
    TimingModel timing;
    MachineStats stats;
    Heap heap{ 4096, timing, stats };
};

TEST_F(HeapFixture, AllocAndRead)
{
    Word a = heap.alloc(ObjKind::Cons, 0x104,
                        { mval::mkInt(1), mval::mkInt(2) });
    EXPECT_EQ(mhdr::kindOf(heap.header(a)), ObjKind::Cons);
    EXPECT_EQ(heap.payload(a, 0), mval::mkInt(1));
    EXPECT_EQ(heap.payload(a, 1), mval::mkInt(2));
    EXPECT_EQ(heap.usedWords(), 3u);
    EXPECT_EQ(stats.allocations, 1u);
}

TEST_F(HeapFixture, ChaseFollowsIndirections)
{
    Word target = heap.alloc(ObjKind::Cons, 0x104, { mval::mkInt(9) });
    Word ind1 = heap.alloc(ObjKind::Ind, 0, { mval::mkRef(target) });
    Word ind2 = heap.alloc(ObjKind::Ind, 0, { mval::mkRef(ind1) });
    EXPECT_EQ(heap.chase(mval::mkRef(ind2)), mval::mkRef(target));
    // An indirection to an integer chases to the integer itself.
    Word ind3 = heap.alloc(ObjKind::Ind, 0, { mval::mkInt(-7) });
    EXPECT_EQ(heap.chase(mval::mkRef(ind3)), mval::mkInt(-7));
}

TEST_F(HeapFixture, CollectPreservesReachableGraph)
{
    // root -> Cons(1, inner), inner = Cons(2, shared), and a second
    // root shares `shared`.
    Word shared = heap.alloc(ObjKind::Cons, 0x105, { mval::mkInt(3) });
    Word inner = heap.alloc(ObjKind::Cons, 0x104,
                            { mval::mkInt(2), mval::mkRef(shared) });
    Word outer = heap.alloc(ObjKind::Cons, 0x104,
                            { mval::mkInt(1), mval::mkRef(inner) });
    Word garbage = heap.alloc(ObjKind::Cons, 0x106,
                              { mval::mkInt(99) });
    (void)garbage;

    Word root1 = mval::mkRef(outer);
    Word root2 = mval::mkRef(shared);
    heap.collect([&](const Heap::RootVisitor &v) {
        v(root1);
        v(root2);
    });

    // Garbage reclaimed: only outer (3 words) + inner (3 words) +
    // shared (2 words) survive.
    EXPECT_EQ(heap.usedWords(), 8u);

    Word o = mval::refOf(root1);
    EXPECT_EQ(heap.payload(o, 0), mval::mkInt(1));
    Word i = mval::refOf(heap.payload(o, 1));
    EXPECT_EQ(heap.payload(i, 0), mval::mkInt(2));
    // Sharing is preserved: inner's tail is the same object root2
    // points at.
    EXPECT_EQ(heap.payload(i, 1), root2);
    EXPECT_EQ(heap.payload(mval::refOf(root2), 0), mval::mkInt(3));
}

TEST_F(HeapFixture, CollectSquashesIndirectionChains)
{
    Word target = heap.alloc(ObjKind::Cons, 0x104, { mval::mkInt(5) });
    Word ind = heap.alloc(ObjKind::Ind, 0, { mval::mkRef(target) });
    Word root = mval::mkRef(ind);
    heap.collect([&](const Heap::RootVisitor &v) { v(root); });
    // The root now points directly at the constructor.
    EXPECT_EQ(mhdr::kindOf(heap.header(mval::refOf(root))),
              ObjKind::Cons);
    EXPECT_EQ(heap.usedWords(), 2u);
}

TEST_F(HeapFixture, CollectChargesPaperCosts)
{
    Word a = heap.alloc(ObjKind::Cons, 0x104,
                        { mval::mkInt(1), mval::mkInt(2) });
    Word root = mval::mkRef(a);
    Cycles before = stats.gcCycles;
    heap.collect([&](const Heap::RootVisitor &v) { v(root); });
    // One 3-word object: setup + (3+4) + one 2-cycle ref check.
    Cycles expect = timing.gcSetup + (3 + 4) + timing.gcRefCheck;
    EXPECT_EQ(stats.gcCycles - before, expect);
    EXPECT_EQ(stats.gcObjectsCopied, 1u);
    EXPECT_EQ(stats.gcWordsCopied, 3u);
}

TEST_F(HeapFixture, RepeatedCollectionsFlipSpaces)
{
    Word a = heap.alloc(ObjKind::Cons, 0x104, { mval::mkInt(4) });
    Word root = mval::mkRef(a);
    for (int i = 0; i < 6; ++i) {
        heap.collect([&](const Heap::RootVisitor &v) { v(root); });
        EXPECT_EQ(heap.payload(mval::refOf(root), 0), mval::mkInt(4));
        EXPECT_EQ(heap.usedWords(), 2u);
    }
    EXPECT_EQ(stats.gcRuns, 6u);
}

TEST_F(HeapFixture, CyclicReferencesViaUpdateSurviveCollection)
{
    // Updates can create cycles (an object updated to point into a
    // structure that references it); the copying collector must
    // terminate and preserve the cycle.
    Word a = heap.alloc(ObjKind::Cons, 0x104,
                        { mval::mkInt(0), mval::mkInt(0) });
    Word b = heap.alloc(ObjKind::Cons, 0x104,
                        { mval::mkInt(1), mval::mkRef(a) });
    heap.setPayload(a, 1, mval::mkRef(b)); // a <-> b cycle
    Word root = mval::mkRef(a);
    heap.collect([&](const Heap::RootVisitor &v) { v(root); });
    Word na = mval::refOf(root);
    Word nb = mval::refOf(heap.payload(na, 1));
    EXPECT_EQ(heap.payload(nb, 1), mval::mkRef(na));
    EXPECT_EQ(heap.usedWords(), 6u);
}

} // namespace
} // namespace zarf
