/**
 * @file
 * The symbolic transfer functions testing themselves against the
 * concrete ISA (docs/SYMBOLIC.md):
 *
 *  - every symbolic ALU rule is differentially checked against
 *    isa/prims.hh::evalAlu over a corner lattice (0, ±1, saturation
 *    boundaries, shift widths, error-latching divisors) — both by
 *    direct term evaluation and under solver-produced models;
 *  - the term arena hash-conses, folds constants through the same
 *    evalAlu, and tracks variable support exactly;
 *  - the interval/congruence solver is sound on both sides exercised
 *    here: every Sat model verifies, every Unsat claim has an exact
 *    proof (pin conflict, bijective-chain inversion, empty interval,
 *    out-of-domain pin);
 *  - the single-path symbolic evaluator agrees with the lazy
 *    small-step reference on concrete (variable-free) programs,
 *    including the error-latching and WHNF rules.
 */

#include <gtest/gtest.h>

#include "isa/binary.hh"
#include "isa/builder.hh"
#include "isa/encoding.hh"
#include "sym/eval.hh"
#include "sym/solver.hh"
#include "sym/term.hh"

namespace zarf::sym
{
namespace
{

/** The corner lattice: zero, units, saturation boundaries and their
 *  neighbors, shift widths, and small composites. */
const SWord kCorners[] = {
    0,  1,  -1, kIntMin, kIntMax, kIntMin + 1, kIntMax - 1,
    2,  -2, 7,  -7,      30,      31,          32,
    33, -31, 100, -100,
};

const Prim kBinaryAlu[] = {
    Prim::Add, Prim::Sub, Prim::Mul, Prim::Div, Prim::Mod,
    Prim::Min, Prim::Max, Prim::Eq,  Prim::Ne,  Prim::Lt,
    Prim::Le,  Prim::Gt,  Prim::Ge,  Prim::BAnd, Prim::BOr,
    Prim::BXor, Prim::Shl, Prim::Shr, Prim::Sru,
};

const Prim kUnaryAlu[] = { Prim::Neg, Prim::Abs, Prim::BNot };

TEST(SymTerm, HashConsingSharesStructure)
{
    TermArena arena;
    TermId v0 = arena.variable(0);
    TermId c3 = arena.constant(3);
    TermId a = arena.apply(Prim::Add, v0, c3);
    TermId b = arena.apply(Prim::Add, v0, arena.constant(3));
    EXPECT_EQ(a, b);
    EXPECT_EQ(arena.variable(0), v0);
    EXPECT_NE(arena.apply(Prim::Add, c3, v0), a);
    EXPECT_EQ(arena.toString(a), "(add v0 3)");
}

TEST(SymTerm, ConstantFoldingMatchesEvalAlu)
{
    TermArena arena;
    for (SWord a : kCorners) {
        for (SWord b : kCorners) {
            for (Prim op : kBinaryAlu) {
                PrimResult g =
                    evalAlu(op, { wrapInt31(a), wrapInt31(b) });
                if (!g.ok)
                    continue; // foldable errors are evaluator forks
                TermId t = arena.apply(op, arena.constant(a),
                                       arena.constant(b));
                ASSERT_TRUE(arena.isConst(t));
                EXPECT_EQ(arena.constValue(t), g.value)
                    << "op 0x" << std::hex << unsigned(op);
            }
        }
    }
}

TEST(SymTerm, SupportTracksVariables)
{
    TermArena arena;
    TermId v0 = arena.variable(0);
    TermId v3 = arena.variable(3);
    TermId t = arena.apply(
        Prim::Mul, arena.apply(Prim::Add, v0, arena.constant(2)),
        v3);
    EXPECT_EQ(arena.support(t), (uint64_t(1) << 0) | (uint64_t(1) << 3));
    EXPECT_EQ(arena.support(arena.constant(9)), 0u);
}

/** Each symbolic ALU rule, differentially checked against evalAlu
 *  over the full corner lattice by direct evaluation. */
TEST(SymTransfer, BinaryRulesMatchEvalAluOnCorners)
{
    TermArena arena;
    TermId v0 = arena.variable(0);
    TermId v1 = arena.variable(1);
    for (Prim op : kBinaryAlu) {
        TermId t = arena.apply(op, v0, v1);
        for (SWord a : kCorners) {
            for (SWord b : kCorners) {
                std::vector<SWord> assign{ a, b };
                TermEvalResult s = arena.evalUnder(t, assign);
                PrimResult g =
                    evalAlu(op, { wrapInt31(a), wrapInt31(b) });
                ASSERT_EQ(s.ok, g.ok)
                    << "op 0x" << std::hex << unsigned(op)
                    << std::dec << " a=" << a << " b=" << b;
                if (g.ok)
                    EXPECT_EQ(s.value, g.value)
                        << "op 0x" << std::hex << unsigned(op)
                        << std::dec << " a=" << a << " b=" << b;
                else
                    EXPECT_EQ(s.errCode, g.errCode);
            }
        }
    }
}

TEST(SymTransfer, UnaryRulesMatchEvalAluOnCorners)
{
    TermArena arena;
    TermId v0 = arena.variable(0);
    for (Prim op : kUnaryAlu) {
        TermId t = arena.apply(op, v0);
        for (SWord a : kCorners) {
            std::vector<SWord> assign{ a };
            TermEvalResult s = arena.evalUnder(t, assign);
            PrimResult g = evalAlu(op, { wrapInt31(a) });
            ASSERT_TRUE(s.ok && g.ok);
            EXPECT_EQ(s.value, g.value)
                << "op 0x" << std::hex << unsigned(op) << std::dec
                << " a=" << a;
        }
    }
}

/** The same rules exercised *under solver models*: pin both inputs
 *  via atoms, let the solver produce a verified model, and compare
 *  the symbolic result term's evaluation with evalAlu at the model.
 *  Corner values restricted to the encodable immediate domain (the
 *  solver's variable domain). */
TEST(SymTransfer, RulesMatchEvalAluUnderSolverModels)
{
    TermArena arena;
    TermId v0 = arena.variable(0);
    TermId v1 = arena.variable(1);
    std::vector<SWord> seed{ 0, 0 };
    for (Prim op : kBinaryAlu) {
        TermId t = arena.apply(op, v0, v1);
        for (SWord a : kCorners) {
            for (SWord b : kCorners) {
                if (a < kMinImm || a > kMaxImm || b < kMinImm ||
                    b > kMaxImm)
                    continue;
                std::vector<Atom> atoms{ { v0, true, a },
                                         { v1, true, b } };
                SolveResult s =
                    solveAtoms(arena, atoms, 2, seed);
                ASSERT_EQ(s.status, SolveStatus::Sat);
                ASSERT_EQ(s.model[0], a);
                ASSERT_EQ(s.model[1], b);
                TermEvalResult sv = arena.evalUnder(t, s.model);
                PrimResult g = evalAlu(op, { a, b });
                ASSERT_EQ(sv.ok, g.ok);
                if (g.ok)
                    EXPECT_EQ(sv.value, g.value)
                        << "op 0x" << std::hex << unsigned(op)
                        << std::dec << " a=" << a << " b=" << b;
            }
        }
    }
}

TEST(SymSolver, PinConflictIsUnsat)
{
    TermArena arena;
    TermId v0 = arena.variable(0);
    std::vector<Atom> atoms{ { v0, true, 3 }, { v0, true, 4 } };
    SolveResult s = solveAtoms(arena, atoms, 1, { 0 });
    EXPECT_EQ(s.status, SolveStatus::Unsat);
}

TEST(SymSolver, BijectiveChainInvertsExactly)
{
    TermArena arena;
    TermId v0 = arena.variable(0);
    // neg(bxor(v0 + 5, 9)) == -12  =>  v0 = (12 ^ 9) - 5 = 0.
    TermId t = arena.apply(
        Prim::Neg,
        arena.apply(Prim::BXor,
                    arena.apply(Prim::Add, v0, arena.constant(5)),
                    arena.constant(9)));
    std::vector<Atom> atoms{ { t, true, wrapInt31(-12) } };
    SolveResult s = solveAtoms(arena, atoms, 1, { 77 });
    ASSERT_EQ(s.status, SolveStatus::Sat);
    EXPECT_EQ(s.model[0], (12 ^ 9) - 5);
    // The verified pin conflicts with an extra exclusion — Unsat.
    atoms.push_back({ v0, false, s.model[0] });
    EXPECT_EQ(solveAtoms(arena, atoms, 1, { 77 }).status,
              SolveStatus::Unsat);
}

TEST(SymSolver, WrapAroundInversionIsExact)
{
    TermArena arena;
    TermId v0 = arena.variable(0);
    // add(v0, 1) == kIntMin only via wrap: v0 = kIntMax, which is
    // outside the immediate domain — a sound Unsat, not a model.
    TermId t = arena.apply(Prim::Add, v0, arena.constant(1));
    std::vector<Atom> atoms{ { t, true, kIntMin } };
    SolveResult s = solveAtoms(arena, atoms, 1, { 0 });
    EXPECT_EQ(s.status, SolveStatus::Unsat);
}

TEST(SymSolver, ComparisonIntervalsNarrowAndRefute)
{
    TermArena arena;
    TermId v0 = arena.variable(0);
    TermId lt = arena.apply(Prim::Lt, v0, arena.constant(10));
    TermId gt = arena.apply(Prim::Gt, v0, arena.constant(5));
    std::vector<Atom> sat{ { lt, true, 1 }, { gt, true, 1 } };
    SolveResult s = solveAtoms(arena, sat, 1, { 0 });
    ASSERT_EQ(s.status, SolveStatus::Sat);
    EXPECT_GT(s.model[0], 5);
    EXPECT_LT(s.model[0], 10);

    TermId lt6 = arena.apply(Prim::Lt, v0, arena.constant(6));
    std::vector<Atom> unsat{ { lt6, true, 1 }, { gt, true, 1 } };
    EXPECT_EQ(solveAtoms(arena, unsat, 1, { 0 }).status,
              SolveStatus::Unsat);
}

TEST(SymSolver, ModCongruenceGuidesSearch)
{
    TermArena arena;
    TermId v0 = arena.variable(0);
    TermId m = arena.apply(Prim::Mod, v0, arena.constant(7));
    TermId gt = arena.apply(Prim::Gt, v0, arena.constant(100));
    std::vector<Atom> atoms{ { m, true, 3 }, { gt, true, 1 } };
    SolveResult s = solveAtoms(arena, atoms, 1, { 0 });
    ASSERT_EQ(s.status, SolveStatus::Sat);
    EXPECT_EQ(s.model[0] % 7, 3);
    EXPECT_GT(s.model[0], 100);
}

TEST(SymSolver, UnconstrainedVarsKeepSeedValues)
{
    TermArena arena;
    TermId v1 = arena.variable(1);
    std::vector<Atom> atoms{ { v1, true, 8 } };
    SolveResult s = solveAtoms(arena, atoms, 3, { 40, 41, 42 });
    ASSERT_EQ(s.status, SolveStatus::Sat);
    EXPECT_EQ(s.model[0], 40);
    EXPECT_EQ(s.model[1], 8);
    EXPECT_EQ(s.model[2], 42);
}

TEST(SymPathCond, AbsorbsDuplicatesRejectsContradictions)
{
    TermArena arena;
    TermId v0 = arena.variable(0);
    PathCond pc;
    EXPECT_TRUE(pc.add(arena, { v0, false, 3 }));
    EXPECT_TRUE(pc.add(arena, { v0, false, 3 })); // duplicate
    EXPECT_EQ(pc.atoms().size(), 1u);
    EXPECT_FALSE(pc.consistent(arena, { v0, true, 3 }));
    EXPECT_TRUE(pc.add(arena, { v0, true, 5 }));
    EXPECT_FALSE(pc.add(arena, { v0, true, 6 }));
    EXPECT_EQ(pc.support(arena), 1u);
}

// ---- single-path evaluator vs the concrete semantics ----

/** A variable-free program runs one path: its Done value and the
 *  machine agreement is checked end-to-end by the concolic suite;
 *  here we check the evaluator's own rules on handcrafted shapes. */
Program
progResultImm(SWord v)
{
    ProgramBuilder pb;
    pb.fn("main", {}, nRet(nImm(v)));
    return pb.build();
}

TEST(SymEvalRules, ConstantProgramProducesConstantValue)
{
    // maxVars=0: fully concrete single path.
    SymEvalConfig cfg;
    cfg.maxVars = 0;
    SymEval eval(progResultImm(42), cfg);
    EXPECT_EQ(eval.numVars(), 0u);
    PathRun run = eval.runPath({});
    ASSERT_EQ(run.status, PathRun::Status::Done);
    ASSERT_TRUE(run.value);
    EXPECT_EQ(run.value->kind, SymValue::Kind::Int);
    ValuePtr v = concretizeValue(eval.arena(), *run.value, {});
    ASSERT_TRUE(v && v->isInt());
    EXPECT_EQ(v->intVal(), 42);
    EXPECT_TRUE(run.pc.empty());
    EXPECT_TRUE(run.choices.empty());
    EXPECT_GT(run.cycleBound, 0u);
}

TEST(SymEvalRules, SymbolicSiteBecomesVariable)
{
    SymEval eval(progResultImm(42), {});
    ASSERT_EQ(eval.numVars(), 1u);
    EXPECT_EQ(eval.seedAssign()[0], 42);
    PathRun run = eval.runPath({});
    ASSERT_EQ(run.status, PathRun::Status::Done);
    ValuePtr v = concretizeValue(eval.arena(), *run.value, { 7 });
    ASSERT_TRUE(v && v->isInt());
    EXPECT_EQ(v->intVal(), 7);
}

TEST(SymEvalRules, DivByZeroLatchesError)
{
    ProgramBuilder pb;
    pb.fn("main", {},
          nLet("d", "div", { nImm(10), nImm(0) }, nRet(nVar("d"))));
    SymEvalConfig cfg;
    cfg.maxVars = 0; // concrete: no fork, direct error
    SymEval eval(pb.build(), cfg);
    PathRun run = eval.runPath({});
    ASSERT_EQ(run.status, PathRun::Status::Done);
    ASSERT_TRUE(run.value);
    ASSERT_EQ(run.value->kind, SymValue::Kind::Cons);
    EXPECT_EQ(run.value->id, Word(Prim::Error));
    ValuePtr v = concretizeValue(eval.arena(), *run.value, {});
    ASSERT_TRUE(v && v->isError());
    EXPECT_EQ(v->items()[0]->intVal(), kErrDivZero);
}

TEST(SymEvalRules, SymbolicDivisorForksBothWays)
{
    ProgramBuilder pb;
    pb.fn("main", {},
          nLet("d", "div", { nImm(100), nImm(4) },
               nRet(nVar("d"))));
    SymEval eval(pb.build(), {});
    ASSERT_EQ(eval.numVars(), 2u);
    // Default path: divisor != 0, result 100/4 under the seed.
    PathRun ok = eval.runPath({});
    ASSERT_EQ(ok.status, PathRun::Status::Done);
    ASSERT_EQ(ok.choices.size(), 1u);
    EXPECT_EQ(ok.choices[0].taken, 0u);
    ASSERT_EQ(ok.choices[0].siblings.size(), 1u);
    ValuePtr v =
        concretizeValue(eval.arena(), *ok.value, { 100, 4 });
    ASSERT_TRUE(v && v->isInt());
    EXPECT_EQ(v->intVal(), 25);
    // Scripted alternative: the divisor-zero arm latches Error.
    PathRun err = eval.runPath({ 1 });
    ASSERT_EQ(err.status, PathRun::Status::Done);
    ASSERT_TRUE(err.value);
    ASSERT_EQ(err.value->kind, SymValue::Kind::Cons);
    EXPECT_EQ(err.value->id, Word(Prim::Error));
}

TEST(SymEvalRules, CaseOnSymbolicIntForksPerLiteralBranch)
{
    ProgramBuilder pb;
    pb.fn("main", {},
          nCase(nImm(1),
                { litBranch(1, nRet(nImm(10))),
                  litBranch(2, nRet(nImm(20))) },
                nRet(nImm(30))));
    SymEvalConfig cfg;
    cfg.maxVars = 1; // only the scrutinee is symbolic
    SymEval eval(pb.build(), cfg);
    ASSERT_EQ(eval.numVars(), 1u);

    PathRun p0 = eval.runPath({});
    ASSERT_EQ(p0.status, PathRun::Status::Done);
    ASSERT_EQ(p0.choices.size(), 1u);
    EXPECT_EQ(p0.choices[0].taken, 0u); // branch 0 (v0 == 1: seed)
    EXPECT_EQ(p0.choices[0].siblings.size(), 2u);

    PathRun p1 = eval.runPath({ 1 });
    ASSERT_EQ(p1.status, PathRun::Status::Done);
    ValuePtr v1 = concretizeValue(eval.arena(), *p1.value, { 2 });
    ASSERT_TRUE(v1 && v1->isInt());
    EXPECT_EQ(v1->intVal(), 20);

    PathRun pe = eval.runPath({ 2 });
    ASSERT_EQ(pe.status, PathRun::Status::Done);
    ValuePtr ve = concretizeValue(eval.arena(), *pe.value, { 9 });
    ASSERT_TRUE(ve && ve->isInt());
    EXPECT_EQ(ve->intVal(), 30);
    // else path carries both != atoms.
    EXPECT_EQ(pe.pc.size(), 2u);
}

TEST(SymEvalRules, ApplyingIntLatchesBadApply)
{
    ProgramBuilder pb;
    pb.fn("main", {},
          nLet("x", "add", { nImm(1), nImm(2) },
               nLet("y", "x", { nImm(5) }, nRet(nVar("y")))));
    SymEvalConfig cfg;
    cfg.maxVars = 0;
    SymEval eval(pb.build(), cfg);
    PathRun run = eval.runPath({});
    ASSERT_EQ(run.status, PathRun::Status::Done);
    ASSERT_TRUE(run.value);
    ASSERT_EQ(run.value->kind, SymValue::Kind::Cons);
    EXPECT_EQ(run.value->id, Word(Prim::Error));
    ValuePtr v = concretizeValue(eval.arena(), *run.value, {});
    ASSERT_TRUE(v && v->isError());
    EXPECT_EQ(v->items()[0]->intVal(), kErrBadApply);
}

TEST(SymEvalRules, SiteWalkIsDeterministicAndCapped)
{
    ProgramBuilder pb;
    pb.fn("main", {},
          nLet("a", "add", { nImm(1), nImm(2) },
               nCase(nImm(3), { litBranch(7, nRet(nImm(4))) },
                     nRet(nImm(5)))));
    Program p1 = pb.build();
    Program p2 = p1.clone();
    auto s1 = collectSymSites(p1, 8);
    auto s2 = collectSymSites(p2, 8);
    ASSERT_EQ(s1.size(), 5u); // 1,2 (let args), 3 (scrut), 4, 5
    ASSERT_EQ(s2.size(), 5u);
    for (size_t i = 0; i < s1.size(); ++i)
        EXPECT_EQ(s1[i]->val, s2[i]->val);
    EXPECT_EQ(s1[0]->val, 1);
    EXPECT_EQ(s1[2]->val, 3);
    EXPECT_EQ(s1[4]->val, 5);
    EXPECT_EQ(collectSymSites(p1, 2).size(), 2u);
}

} // namespace
} // namespace zarf::sym
